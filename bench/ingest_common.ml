(* Shared measurement harness for the ingestion benchmarks (bench/ingest.ml
   writes BENCH_ingest.json from these numbers; experiment E14 in
   bench/main.ml prints them as a table). *)

open Ds_util
open Ds_stream

let seed = 20140721

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

(* Signed coordinate updates over edge-index space, for the L0 micro-bench. *)
let l0_workload ~dim ~updates =
  let rng = Prng.create (seed + 41) in
  Array.init updates (fun _ -> (Prng.int rng dim, if Prng.bool rng then 1 else -1))

(* An insert-heavy dynamic edge stream for the AGM end-to-end bench. *)
let agm_workload ~n ~updates =
  let rng = Prng.create (seed + 43) in
  Array.init updates (fun _ ->
      let u = Prng.int rng n in
      let v = (u + 1 + Prng.int rng (n - 1)) mod n in
      if Prng.int rng 4 = 0 then Update.delete u v else Update.insert u v)

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

(* Wall-clock ops/sec of [f ()] applying [ops] updates; best of [reps] so a
   stray scheduler hiccup cannot deflate a rate. *)
let rate ?(reps = 3) ~ops f =
  let best = ref infinity in
  for _ = 1 to reps do
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  float_of_int ops /. !best

(* ------------------------------------------------------------------ *)
(* Single-thread: baseline (pre-kernel) vs kernelized                  *)
(* ------------------------------------------------------------------ *)

let l0_params = Ds_sketch.L0_sampler.default_params

(* One_sparse micro: the tightest kernel — pre-PR each update paid an
   O(log dim) modular exponentiation; the ladder makes it one multiply. *)
let baseline_one_sparse_rate ~dim ~updates =
  let w = l0_workload ~dim ~updates in
  let sk = Baseline.One_sparse.create (Prng.create seed) ~dim in
  rate ~ops:updates (fun () ->
      Array.iter (fun (index, delta) -> Baseline.One_sparse.update sk ~index ~delta) w)

let kernel_one_sparse_rate ~dim ~updates =
  let w = l0_workload ~dim ~updates in
  let sk = Ds_sketch.One_sparse.create (Prng.create seed) ~dim in
  rate ~ops:updates (fun () -> Ds_sketch.One_sparse.update_batch sk w)

(* Sparse-recovery micro: rows cells per update, each formerly paying the
   exponentiation plus a full re-fold per row. *)
let baseline_sr_rate ~dim ~updates =
  let w = l0_workload ~dim ~updates in
  let sk =
    Baseline.Sparse_recovery.create (Prng.create seed) ~dim ~sparsity:l0_params.sparsity
      ~rows:l0_params.rows ~hash_degree:l0_params.hash_degree
  in
  rate ~ops:updates (fun () ->
      Array.iter (fun (index, delta) -> Baseline.Sparse_recovery.update sk ~index ~delta) w)

let kernel_sr_rate ~dim ~updates =
  let w = l0_workload ~dim ~updates in
  let sk =
    Ds_sketch.Sparse_recovery.create (Prng.create seed) ~dim
      ~params:
        {
          Ds_sketch.Sparse_recovery.sparsity = l0_params.sparsity;
          rows = l0_params.rows;
          hash_degree = l0_params.hash_degree;
        }
  in
  rate ~ops:updates (fun () -> Ds_sketch.Sparse_recovery.update_batch sk w)

let baseline_l0_rate ~dim ~updates =
  let w = l0_workload ~dim ~updates in
  let sk =
    Baseline.L0_sampler.create (Prng.create seed) ~dim ~sparsity:l0_params.sparsity
      ~rows:l0_params.rows ~hash_degree:l0_params.hash_degree
  in
  rate ~ops:updates (fun () ->
      Array.iter (fun (index, delta) -> Baseline.L0_sampler.update sk ~index ~delta) w)

let kernel_l0_rate ~dim ~updates =
  let w = l0_workload ~dim ~updates in
  let sk = Ds_sketch.L0_sampler.create (Prng.create seed) ~dim ~params:l0_params in
  rate ~ops:updates (fun () -> Ds_sketch.L0_sampler.update_batch sk w)

let agm_params ~n = Ds_agm.Agm_sketch.default_params ~n

(* ------------------------------------------------------------------ *)
(* GC cost: allocation pressure of the ingest kernels                  *)
(* ------------------------------------------------------------------ *)

(* Major-heap words allocated and minor collections per run of [f],
   averaged over [reps] after one warm-up run (arenas fill, one-time
   setup drops out).  Counter state itself is off-heap (Ds_util.Words),
   so what this measures is exactly the per-run structural garbage:
   replica towers, boxed scratch, closure spines.  [Gc.stat] rather
   than [quick_stat]: replicas are cloned on pool domains, and only the
   former aggregates minor-collection counts across domains. *)
let gc_cost ?(reps = 3) f =
  f ();
  Gc.full_major ();
  let s0 = Gc.stat () in
  for _ = 1 to reps do
    f ()
  done;
  let s1 = Gc.stat () in
  ( (s1.Gc.major_words -. s0.Gc.major_words) /. float_of_int reps,
    float_of_int (s1.Gc.minor_collections - s0.Gc.minor_collections) /. float_of_int reps )

let kernel_l0_gc ~dim ~updates =
  let w = l0_workload ~dim ~updates in
  let sk = Ds_sketch.L0_sampler.create (Prng.create seed) ~dim ~params:l0_params in
  gc_cost (fun () -> Ds_sketch.L0_sampler.update_batch sk w)

let kernel_agm_gc ~n ~updates =
  let w = agm_workload ~n ~updates in
  let sk = Ds_agm.Agm_sketch.create (Prng.create seed) ~n ~params:(agm_params ~n) in
  gc_cost (fun () -> Ds_agm.Agm_sketch.update_batch sk w)

(* The clone-elimination comparison: the same parallel ingest with fresh
   [clone_zero] replicas every run vs recycled arena replicas. *)
let parallel_agm_gc ~n ~updates ~domains ~arena:use_arena =
  let w = agm_workload ~n ~updates in
  let proto = Ds_agm.Agm_sketch.create (Prng.create seed) ~n ~params:(agm_params ~n) in
  Ds_par.Pool.with_pool ~domains (fun pool ->
      let arena = if use_arena then Some (Ds_par.Shard_ingest.agm_arena ()) else None in
      gc_cost (fun () -> Ds_par.Shard_ingest.agm pool ?arena ~workers:domains proto w))

let baseline_agm_rate ~n ~updates =
  let w = agm_workload ~n ~updates in
  let prm = agm_params ~n in
  let sk =
    Baseline.Agm_sketch.create (Prng.create seed) ~n ~copies:prm.copies
      ~sparsity:prm.sampler.sparsity ~rows:prm.sampler.rows
      ~hash_degree:prm.sampler.hash_degree
  in
  rate ~ops:updates (fun () ->
      Array.iter
        (fun (u : Update.t) ->
          Baseline.Agm_sketch.update sk ~u:u.Update.u ~v:u.Update.v ~delta:(Update.delta u))
        w)

let kernel_agm_rate ~n ~updates =
  let w = agm_workload ~n ~updates in
  let sk = Ds_agm.Agm_sketch.create (Prng.create seed) ~n ~params:(agm_params ~n) in
  rate ~ops:updates (fun () -> Ds_agm.Agm_sketch.update_batch sk w)

(* ------------------------------------------------------------------ *)
(* Parallel: sharded ingestion on a domain pool                        *)
(* ------------------------------------------------------------------ *)

let parallel_agm_rate ~n ~updates ~domains =
  let w = agm_workload ~n ~updates in
  let proto = Ds_agm.Agm_sketch.create (Prng.create seed) ~n ~params:(agm_params ~n) in
  (* [~workers:domains] overrides the engine's cores cap: the scaling
     curve must measure what [domains] replicas actually cost on this
     host, not the engine's own (deliberately conservative) default. *)
  Ds_par.Pool.with_pool ~domains (fun pool ->
      rate ~ops:updates (fun () -> Ds_par.Shard_ingest.agm pool ~workers:domains proto w))

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: the instrumented sharded AGM path, registry off
   vs on.  Instrumentation is batch-granular, so both rates should be
   within noise of each other; the bench guard enforces < 3%.

   On a shared machine the noise floor (load epochs at every timescale
   from milliseconds to minutes) is larger than the few-percent gate,
   so coarse interleaving — timing whole-workload windows off, on, off,
   on — is not enough: an epoch boundary landing inside a window biases
   whole ratios.  Instead the workload is cut into small chunks and
   each chunk is timed in both configurations back to back, so the two
   sides of every ratio sample the same few milliseconds of machine
   state.  The order within a chunk alternates (off-first, on-first) to
   cancel the cache-warmth advantage of running the same chunk second.
   Per pass the chunk times are summed per side; the reported overhead
   fraction is the median of per-pass on/off ratios, and the reported
   rates are the best pass of each side. *)

let overhead_agm_rates ~enable ~disable ~n ~updates ~domains =
  let w = agm_workload ~n ~updates in
  let proto = Ds_agm.Agm_sketch.create (Prng.create seed) ~n ~params:(agm_params ~n) in
  Ds_par.Pool.with_pool ~domains (fun pool ->
      (* Big enough to amortize the per-call shard/merge cost, small
         enough that a pair still sits inside one load epoch. *)
      let chunk = 2000 in
      let nchunks = (updates + chunk - 1) / chunk in
      let chunks =
        Array.init nchunks (fun i ->
            let lo = i * chunk in
            Array.sub w lo (min chunk (updates - lo)))
      in
      let time_chunk c =
        let t0 = Unix.gettimeofday () in
        Ds_par.Shard_ingest.agm pool proto c;
        Unix.gettimeofday () -. t0
      in
      let passes = 7 in
      let ratios = Array.make passes 0.0 in
      let best_off = ref infinity and best_on = ref infinity in
      for pass = 0 to passes - 1 do
        Gc.compact ();
        let t_off = ref 0.0 and t_on = ref 0.0 in
        Array.iteri
          (fun i c ->
            let off_first = (i + pass) land 1 = 0 in
            let side first =
              if first = off_first then (disable (); t_off := !t_off +. time_chunk c)
              else (enable (); t_on := !t_on +. time_chunk c)
            in
            side true;
            side false)
          chunks;
        ratios.(pass) <- !t_on /. !t_off;
        if !t_off < !best_off then best_off := !t_off;
        if !t_on < !best_on then best_on := !t_on
      done;
      disable ();
      Ds_obs.Export.reset ();
      Array.sort compare ratios;
      let median = ratios.(passes / 2) in
      let ops = float_of_int updates in
      (ops /. !best_off, ops /. !best_on, median -. 1.0))

let metrics_overhead_agm_rates ~n ~updates ~domains =
  overhead_agm_rates ~enable:Ds_obs.Export.enable ~disable:Ds_obs.Export.disable ~n ~updates
    ~domains

(* Causal tracing alone (registry off): the span stack push/pop and ring
   stores on the sharded path.  Spans are batch-granular like the
   counters, so the gate is the same <3% the guard enforces for
   metrics. *)
let tracing_overhead_agm_rates ~n ~updates ~domains =
  overhead_agm_rates
    ~enable:(fun () -> Ds_obs.Trace.set_enabled true)
    ~disable:(fun () -> Ds_obs.Trace.set_enabled false)
    ~n ~updates ~domains
