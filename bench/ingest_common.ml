(* Shared measurement harness for the ingestion benchmarks (bench/ingest.ml
   writes BENCH_ingest.json from these numbers; experiment E14 in
   bench/main.ml prints them as a table). *)

open Ds_util
open Ds_stream

let seed = 20140721

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

(* Signed coordinate updates over edge-index space, for the L0 micro-bench. *)
let l0_workload ~dim ~updates =
  let rng = Prng.create (seed + 41) in
  Array.init updates (fun _ -> (Prng.int rng dim, if Prng.bool rng then 1 else -1))

(* An insert-heavy dynamic edge stream for the AGM end-to-end bench. *)
let agm_workload ~n ~updates =
  let rng = Prng.create (seed + 43) in
  Array.init updates (fun _ ->
      let u = Prng.int rng n in
      let v = (u + 1 + Prng.int rng (n - 1)) mod n in
      if Prng.int rng 4 = 0 then Update.delete u v else Update.insert u v)

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

(* Wall-clock ops/sec of [f ()] applying [ops] updates; best of [reps] so a
   stray scheduler hiccup cannot deflate a rate. *)
let rate ?(reps = 3) ~ops f =
  let best = ref infinity in
  for _ = 1 to reps do
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  float_of_int ops /. !best

(* ------------------------------------------------------------------ *)
(* Single-thread: baseline (pre-kernel) vs kernelized                  *)
(* ------------------------------------------------------------------ *)

let l0_params = Ds_sketch.L0_sampler.default_params

(* One_sparse micro: the tightest kernel — pre-PR each update paid an
   O(log dim) modular exponentiation; the ladder makes it one multiply. *)
let baseline_one_sparse_rate ~dim ~updates =
  let w = l0_workload ~dim ~updates in
  let sk = Baseline.One_sparse.create (Prng.create seed) ~dim in
  rate ~ops:updates (fun () ->
      Array.iter (fun (index, delta) -> Baseline.One_sparse.update sk ~index ~delta) w)

let kernel_one_sparse_rate ~dim ~updates =
  let w = l0_workload ~dim ~updates in
  let sk = Ds_sketch.One_sparse.create (Prng.create seed) ~dim in
  rate ~ops:updates (fun () -> Ds_sketch.One_sparse.update_batch sk w)

(* Sparse-recovery micro: rows cells per update, each formerly paying the
   exponentiation plus a full re-fold per row. *)
let baseline_sr_rate ~dim ~updates =
  let w = l0_workload ~dim ~updates in
  let sk =
    Baseline.Sparse_recovery.create (Prng.create seed) ~dim ~sparsity:l0_params.sparsity
      ~rows:l0_params.rows ~hash_degree:l0_params.hash_degree
  in
  rate ~ops:updates (fun () ->
      Array.iter (fun (index, delta) -> Baseline.Sparse_recovery.update sk ~index ~delta) w)

let kernel_sr_rate ~dim ~updates =
  let w = l0_workload ~dim ~updates in
  let sk =
    Ds_sketch.Sparse_recovery.create (Prng.create seed) ~dim
      ~params:
        {
          Ds_sketch.Sparse_recovery.sparsity = l0_params.sparsity;
          rows = l0_params.rows;
          hash_degree = l0_params.hash_degree;
        }
  in
  rate ~ops:updates (fun () -> Ds_sketch.Sparse_recovery.update_batch sk w)

let baseline_l0_rate ~dim ~updates =
  let w = l0_workload ~dim ~updates in
  let sk =
    Baseline.L0_sampler.create (Prng.create seed) ~dim ~sparsity:l0_params.sparsity
      ~rows:l0_params.rows ~hash_degree:l0_params.hash_degree
  in
  rate ~ops:updates (fun () ->
      Array.iter (fun (index, delta) -> Baseline.L0_sampler.update sk ~index ~delta) w)

let kernel_l0_rate ~dim ~updates =
  let w = l0_workload ~dim ~updates in
  let sk = Ds_sketch.L0_sampler.create (Prng.create seed) ~dim ~params:l0_params in
  rate ~ops:updates (fun () -> Ds_sketch.L0_sampler.update_batch sk w)

let agm_params ~n = Ds_agm.Agm_sketch.default_params ~n

let baseline_agm_rate ~n ~updates =
  let w = agm_workload ~n ~updates in
  let prm = agm_params ~n in
  let sk =
    Baseline.Agm_sketch.create (Prng.create seed) ~n ~copies:prm.copies
      ~sparsity:prm.sampler.sparsity ~rows:prm.sampler.rows
      ~hash_degree:prm.sampler.hash_degree
  in
  rate ~ops:updates (fun () ->
      Array.iter
        (fun (u : Update.t) ->
          Baseline.Agm_sketch.update sk ~u:u.Update.u ~v:u.Update.v ~delta:(Update.delta u))
        w)

let kernel_agm_rate ~n ~updates =
  let w = agm_workload ~n ~updates in
  let sk = Ds_agm.Agm_sketch.create (Prng.create seed) ~n ~params:(agm_params ~n) in
  rate ~ops:updates (fun () -> Ds_agm.Agm_sketch.update_batch sk w)

(* ------------------------------------------------------------------ *)
(* Parallel: sharded ingestion on a domain pool                        *)
(* ------------------------------------------------------------------ *)

let parallel_agm_rate ~n ~updates ~domains =
  let w = agm_workload ~n ~updates in
  let proto = Ds_agm.Agm_sketch.create (Prng.create seed) ~n ~params:(agm_params ~n) in
  Ds_par.Pool.with_pool ~domains (fun pool ->
      rate ~ops:updates (fun () -> Ds_par.Shard_ingest.agm pool proto w))

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: the instrumented sharded AGM path, registry off
   vs on.  Instrumentation is batch-granular, so both rates should be
   within noise of each other; the bench guard enforces < 3%.

   The two configurations are measured interleaved (off, on, off, on,
   ...) taking the best wall clock of each, so machine-load drift over
   the measurement window inflates both sides alike instead of being
   charged to whichever ran second. *)

let metrics_overhead_agm_rates ~n ~updates ~domains =
  let w = agm_workload ~n ~updates in
  let proto = Ds_agm.Agm_sketch.create (Prng.create seed) ~n ~params:(agm_params ~n) in
  Ds_par.Pool.with_pool ~domains (fun pool ->
      let timed () =
        Gc.compact ();
        let t0 = Unix.gettimeofday () in
        Ds_par.Shard_ingest.agm pool proto w;
        Unix.gettimeofday () -. t0
      in
      let best_off = ref infinity and best_on = ref infinity in
      for _ = 1 to 9 do
        Ds_obs.Export.disable ();
        let off = timed () in
        if off < !best_off then best_off := off;
        Ds_obs.Export.enable ();
        let on = timed () in
        if on < !best_on then best_on := on
      done;
      Ds_obs.Export.disable ();
      Ds_obs.Export.reset ();
      let ops = float_of_int updates in
      (ops /. !best_off, ops /. !best_on))
