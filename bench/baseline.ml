(* The pre-kernel ingestion hot path, preserved verbatim for benchmarking.

   These are faithful copies of the update loops as they stood before the
   batched-kernel rewrite: [Field.pow] (O(log dim) squarings) recomputed for
   every cell of every row on every update, and the key fold re-done once
   per row and per level. BENCH_ingest.json reports the kernel speedup
   against *this* code measured in the same run on the same machine, so the
   ratio tracks real regressions rather than hardware drift.

   The arithmetic is pinned too: [Field0] and [Kwise0] below are the
   division-based field ops and hash evaluation as they stood before this
   PR's Mersenne-reduction rewrite of [Field.mul]. Without the pin, speeding
   up the shared library would silently speed up the "baseline" and the
   reported ratio would stop meaning "kernel vs pre-PR". Coefficients are
   drawn through the same [Prng] calls as [Kwise.create], so the hash
   functions are value-identical to the library's. *)

open Ds_util

(* Pre-PR field arithmetic: every reduction a hardware division. *)
module Field0 = struct
  let p = 0x7fffffff

  let of_int x =
    let r = x mod p in
    if r < 0 then r + p else r

  let add a b =
    let s = a + b in
    if s >= p then s - p else s

  let mul a b = a * b mod p

  let pow b e =
    let rec go acc b e =
      if e = 0 then acc
      else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
      else go acc (mul b b) (e lsr 1)
    in
    go 1 (of_int b) e

  let scale_int c x = mul (of_int c) x
end

(* Pre-PR hash evaluation: same coefficient draw as [Kwise.create] (so the
   functions are value-identical), but the fold + Horner loop re-done from
   scratch on every call, all products reduced by division. *)
module Kwise0 = struct
  type t = { coeffs : int array }

  let create rng ~k =
    let coeffs = Array.init k (fun _ -> Prng.int rng Field0.p) in
    if Array.for_all (fun c -> c = 0) coeffs then coeffs.(0) <- 1;
    { coeffs }

  let eval t x =
    let x =
      let lo = x land 0x7fffffff and hi = (x lsr 31) land 0x7fffffff in
      Field0.add (Field0.of_int lo) (Field0.mul (Field0.of_int hi) 0x5DEECE66)
    in
    let acc = ref 0 in
    for i = Array.length t.coeffs - 1 downto 0 do
      acc := Field0.add (Field0.mul !acc x) t.coeffs.(i)
    done;
    !acc

  let level t x =
    let v = eval t x in
    if v = 0 then 31
    else begin
      let rec go j threshold =
        if j >= 31 then 31
        else if v < threshold then go (j + 1) (threshold / 2)
        else j
      in
      (go 0 Field0.p - 1) |> max 0
    end
end

module One_sparse = struct
  type t = {
    dim : int;
    base : int;
    mutable c0 : int;
    mutable c1 : int;
    mutable c2 : int;
  }

  let create rng ~dim =
    let base = 2 + Prng.int rng (Field0.p - 2) in
    { dim; base; c0 = 0; c1 = 0; c2 = 0 }

  let update t ~index ~delta =
    if index < 0 || index >= t.dim then invalid_arg "One_sparse.update: index out of range";
    t.c0 <- t.c0 + delta;
    t.c1 <- t.c1 + (delta * index);
    t.c2 <- Field0.add t.c2 (Field0.scale_int delta (Field0.pow t.base (index + 1)))
end

module Sparse_recovery = struct
  type t = {
    dim : int;
    rows : int;
    cols : int;
    hashes : Kwise0.t array;
    cells : One_sparse.t array array;
  }

  let create rng ~dim ~sparsity ~rows ~hash_degree =
    let cols = max 2 (2 * sparsity) in
    let hashes =
      Array.init rows (fun r ->
          Kwise0.create (Prng.split_named rng (Printf.sprintf "row%d" r)) ~k:hash_degree)
    in
    let cell_rng = Prng.split_named rng "cells" in
    let proto = Prng.copy cell_rng in
    let cells =
      Array.init rows (fun _ ->
          Array.init cols (fun _ -> One_sparse.create (Prng.copy proto) ~dim))
    in
    { dim; rows; cols; hashes; cells }

  (* The pre-PR row loop: one full key fold + modulo per row, one modular
     exponentiation per touched cell. *)
  let update t ~index ~delta =
    for r = 0 to t.rows - 1 do
      let c = Kwise0.eval t.hashes.(r) index mod t.cols in
      One_sparse.update t.cells.(r).(c) ~index ~delta
    done
end

module L0_sampler = struct
  type t = {
    levels : int;
    level_hash : Kwise0.t;
    sketches : Sparse_recovery.t array;
  }

  let create rng ~dim ~sparsity ~rows ~hash_degree =
    let levels = Ds_sketch.F0.levels_for dim in
    {
      levels;
      level_hash = Kwise0.create (Prng.split_named rng "levels") ~k:hash_degree;
      sketches =
        Array.init levels (fun j ->
            Sparse_recovery.create
              (Prng.split_named rng (Printf.sprintf "lvl%d" j))
              ~dim ~sparsity ~rows ~hash_degree);
    }

  let update t ~index ~delta =
    let lvl = min (Kwise0.level t.level_hash index) (t.levels - 1) in
    for j = 0 to lvl do
      Sparse_recovery.update t.sketches.(j) ~index ~delta
    done
end

module Agm_sketch = struct
  type t = { n : int; copies : int; samplers : L0_sampler.t array array }

  let create rng ~n ~copies ~sparsity ~rows ~hash_degree =
    let dim = Ds_graph.Edge_index.dim n in
    let samplers =
      Array.init copies (fun c ->
          let copy_rng = Prng.split_named rng (Printf.sprintf "copy%d" c) in
          Array.init n (fun _ ->
              L0_sampler.create (Prng.copy copy_rng) ~dim ~sparsity ~rows ~hash_degree))
    in
    { n; copies; samplers }

  let signed_delta ~u ~v delta = if u < v then delta else -delta

  let update t ~u ~v ~delta =
    let idx = Ds_graph.Edge_index.encode ~n:t.n u v in
    for c = 0 to t.copies - 1 do
      L0_sampler.update t.samplers.(c).(u) ~index:idx ~delta:(signed_delta ~u ~v delta);
      L0_sampler.update t.samplers.(c).(v) ~index:idx ~delta:(signed_delta ~u:v ~v:u delta)
    done
end
