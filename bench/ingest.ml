(* Ingestion-throughput trajectory bench.

     dune exec bench/ingest.exe [-- OUTPUT.json]

   Measures, in one run on one machine: (a) the pre-kernel single-thread
   baseline (bench/baseline.ml, the hot path as it stood before the batched
   update kernels), (b) the kernelized single-thread rate, and (c) the
   domain-parallel sharded rate at several pool sizes. Writes the numbers as
   machine-readable JSON (default ./BENCH_ingest.json) so later PRs can
   detect throughput regressions against this PR's trajectory. *)

let git_sha () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some s when s <> "" -> s
  | _ -> (
      try
        let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
        let line = try input_line ic with End_of_file -> "" in
        match Unix.close_process_in ic with
        | Unix.WEXITED 0 when line <> "" -> line
        | _ -> "unknown"
      with _ -> "unknown")

let iso8601_utc () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let dim = Ds_graph.Edge_index.dim 256
let l0_updates = 200_000
let agm_n = 256
let agm_updates = 30_000
let domain_counts = [ 1; 2; 4; 8 ]

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_ingest.json" in
  (* Open the output before measuring: a typo'd path should fail in
     milliseconds, not after minutes of benchmarking. *)
  let oc = open_out out in
  let module C = Ingest_common in
  Fmt.pr "ingestion bench: L0 micro (dim=%d, %d updates); AGM end-to-end (n=%d, %d updates)@."
    dim l0_updates agm_n agm_updates;
  let baseline_os = C.baseline_one_sparse_rate ~dim ~updates:l0_updates in
  Fmt.pr "  baseline 1sparse %12.0f ops/s@." baseline_os;
  let kernel_os = C.kernel_one_sparse_rate ~dim ~updates:l0_updates in
  Fmt.pr "  kernel   1sparse %12.0f ops/s  (%.2fx)@." kernel_os (kernel_os /. baseline_os);
  let baseline_sr = C.baseline_sr_rate ~dim ~updates:l0_updates in
  Fmt.pr "  baseline srec    %12.0f ops/s@." baseline_sr;
  let kernel_sr = C.kernel_sr_rate ~dim ~updates:l0_updates in
  Fmt.pr "  kernel   srec    %12.0f ops/s  (%.2fx)@." kernel_sr (kernel_sr /. baseline_sr);
  let baseline_l0 = C.baseline_l0_rate ~dim ~updates:l0_updates in
  Fmt.pr "  baseline l0      %12.0f ops/s@." baseline_l0;
  let kernel_l0 = C.kernel_l0_rate ~dim ~updates:l0_updates in
  Fmt.pr "  kernel   l0      %12.0f ops/s  (%.2fx)@." kernel_l0 (kernel_l0 /. baseline_l0);
  let baseline_agm = C.baseline_agm_rate ~n:agm_n ~updates:agm_updates in
  Fmt.pr "  baseline agm     %12.0f ops/s@." baseline_agm;
  let kernel_agm = C.kernel_agm_rate ~n:agm_n ~updates:agm_updates in
  Fmt.pr "  kernel   agm     %12.0f ops/s  (%.2fx)@." kernel_agm (kernel_agm /. baseline_agm);
  let host_cores = Domain.recommended_domain_count () in
  let parallel =
    List.map
      (fun domains ->
        let r = C.parallel_agm_rate ~n:agm_n ~updates:agm_updates ~domains in
        (* Efficiency counts only the domains the host can actually run:
           past [host_cores] the extra domains timeshare, and dividing by
           them would punish the engine for the machine's size. *)
        let eff = r /. kernel_agm /. float_of_int (min domains host_cores) in
        Fmt.pr "  parallel agm x%-2d %12.0f ops/s  (%.2fx vs kernel, eff %.2f)@." domains r
          (r /. kernel_agm) eff;
        (domains, r, eff))
      domain_counts
  in
  (* The domain count to recommend is read off the measured curve, not
     guessed from the core count: the smallest count within 5% of the
     best rate (ties go to fewer domains — replicas are not free). *)
  let best_rate = List.fold_left (fun acc (_, r, _) -> Float.max acc r) 0.0 parallel in
  let recommended =
    List.fold_left
      (fun acc (d, r, _) ->
        match acc with Some _ -> acc | None -> if r >= 0.95 *. best_rate then Some d else None)
      None parallel
    |> Option.value ~default:1
  in
  Fmt.pr "  recommended domain count: %d (host cores %d)@." recommended host_cores;
  let obs_off, obs_on, obs_overhead =
    (* One domain: the point is instrumentation overhead, and pool
       scheduling noise at higher domain counts would drown the signal. *)
    C.metrics_overhead_agm_rates ~n:agm_n ~updates:agm_updates ~domains:1
  in
  Fmt.pr "  metrics overhead  off %.0f ops/s, on %.0f ops/s (%+.2f%% median)@." obs_off obs_on
    (100. *. obs_overhead);
  let tr_off, tr_on, tr_overhead =
    C.tracing_overhead_agm_rates ~n:agm_n ~updates:agm_updates ~domains:1
  in
  Fmt.pr "  tracing overhead  off %.0f ops/s, on %.0f ops/s (%+.2f%% median)@." tr_off tr_on
    (100. *. tr_overhead);
  (* GC trajectory (v3): structural allocation per run, counters being
     off-heap.  The parallel pair quantifies clone elimination — fresh
     replicas every run vs arena-recycled ones. *)
  let gc_l0_major, gc_l0_minor = C.kernel_l0_gc ~dim ~updates:l0_updates in
  Fmt.pr "  gc l0 kernel     %12.0f major words, %.1f minor collections / run@." gc_l0_major
    gc_l0_minor;
  let gc_agm_major, gc_agm_minor = C.kernel_agm_gc ~n:agm_n ~updates:agm_updates in
  Fmt.pr "  gc agm kernel    %12.0f major words, %.1f minor collections / run@." gc_agm_major
    gc_agm_minor;
  let gc_domains = 4 in
  let gc_par_major, gc_par_minor =
    C.parallel_agm_gc ~n:agm_n ~updates:agm_updates ~domains:gc_domains ~arena:false
  in
  Fmt.pr "  gc agm x%d fresh  %12.0f major words, %.1f minor collections / run@." gc_domains
    gc_par_major gc_par_minor;
  let gc_arena_major, gc_arena_minor =
    C.parallel_agm_gc ~n:agm_n ~updates:agm_updates ~domains:gc_domains ~arena:true
  in
  let arena_ratio = if gc_par_major > 0.0 then gc_arena_major /. gc_par_major else 1.0 in
  Fmt.pr "  gc agm x%d arena  %12.0f major words, %.1f minor collections / run (%.2fx)@."
    gc_domains gc_arena_major gc_arena_minor arena_ratio;
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"bench_ingest/v3\",\n";
  p "  \"git_sha\": \"%s\",\n" (git_sha ());
  p "  \"date\": \"%s\",\n" (iso8601_utc ());
  p "  \"timestamp\": %.0f,\n" (Unix.time ());
  p "  \"host_cores\": %d,\n" host_cores;
  p "  \"recommended_domain_count\": %d,\n" recommended;
  p "  \"workloads\": {\n";
  p "    \"l0\": { \"dim\": %d, \"updates\": %d },\n" dim l0_updates;
  p "    \"agm\": { \"n\": %d, \"updates\": %d }\n" agm_n agm_updates;
  p "  },\n";
  p "  \"single_thread\": {\n";
  p "    \"baseline_one_sparse_ops_per_sec\": %.0f,\n" baseline_os;
  p "    \"kernel_one_sparse_ops_per_sec\": %.0f,\n" kernel_os;
  p "    \"one_sparse_kernel_speedup\": %.3f,\n" (kernel_os /. baseline_os);
  p "    \"baseline_sparse_recovery_ops_per_sec\": %.0f,\n" baseline_sr;
  p "    \"kernel_sparse_recovery_ops_per_sec\": %.0f,\n" kernel_sr;
  p "    \"sparse_recovery_kernel_speedup\": %.3f,\n" (kernel_sr /. baseline_sr);
  p "    \"baseline_l0_ops_per_sec\": %.0f,\n" baseline_l0;
  p "    \"kernel_l0_ops_per_sec\": %.0f,\n" kernel_l0;
  p "    \"l0_kernel_speedup\": %.3f,\n" (kernel_l0 /. baseline_l0);
  p "    \"baseline_agm_ops_per_sec\": %.0f,\n" baseline_agm;
  p "    \"kernel_agm_ops_per_sec\": %.0f,\n" kernel_agm;
  p "    \"agm_kernel_speedup\": %.3f\n" (kernel_agm /. baseline_agm);
  p "  },\n";
  p "  \"metrics_overhead\": {\n";
  p "    \"agm_ops_per_sec_disabled\": %.0f,\n" obs_off;
  p "    \"agm_ops_per_sec_enabled\": %.0f,\n" obs_on;
  p "    \"enabled_overhead_frac\": %.4f\n" obs_overhead;
  p "  },\n";
  p "  \"tracing_overhead\": {\n";
  p "    \"agm_ops_per_sec_disabled\": %.0f,\n" tr_off;
  p "    \"agm_ops_per_sec_enabled\": %.0f,\n" tr_on;
  p "    \"tracing_overhead_frac\": %.4f\n" tr_overhead;
  p "  },\n";
  p "  \"gc\": {\n";
  p "    \"gc_domains\": %d,\n" gc_domains;
  p "    \"kernel_l0_major_words_per_run\": %.0f,\n" gc_l0_major;
  p "    \"kernel_l0_minor_collections_per_run\": %.1f,\n" gc_l0_minor;
  p "    \"kernel_agm_major_words_per_run\": %.0f,\n" gc_agm_major;
  p "    \"kernel_agm_minor_collections_per_run\": %.1f,\n" gc_agm_minor;
  p "    \"parallel_agm_major_words_noarena\": %.0f,\n" gc_par_major;
  p "    \"parallel_agm_minor_collections_noarena\": %.1f,\n" gc_par_minor;
  p "    \"parallel_agm_major_words_arena\": %.0f,\n" gc_arena_major;
  p "    \"parallel_agm_minor_collections_arena\": %.1f,\n" gc_arena_minor;
  p "    \"arena_major_words_ratio\": %.4f\n" arena_ratio;
  p "  },\n";
  p "  \"parallel_agm\": [\n";
  List.iteri
    (fun i (domains, r, eff) ->
      p
        "    { \"domains\": %d, \"ops_per_sec\": %.0f, \"speedup_vs_kernel\": %.3f, \
         \"efficiency\": %.3f }%s\n"
        domains r (r /. kernel_agm) eff
        (if i = List.length parallel - 1 then "" else ","))
    parallel;
  p "  ],\n";
  (* Flat copies of the curve for the guard's key scanner (it looks up
     each key by name exactly once and cannot index into arrays). *)
  p "  \"parallel_flat\": {\n";
  List.iteri
    (fun i (domains, r, eff) ->
      p "    \"parallel_speedup_d%d\": %.3f,\n" domains (r /. kernel_agm);
      p "    \"parallel_efficiency_d%d\": %.3f%s\n" domains eff
        (if i = List.length parallel - 1 then "" else ","))
    parallel;
  p "  }\n";
  p "}\n";
  close_out oc;
  Fmt.pr "wrote %s@." out
