(* Spectral sparsification of a streamed graph on the classical hard
   instance for cut preservation: a barbell — two dense communities joined
   by one bridge. The sparsifier must keep the bridge at weight ~1 while
   aggressively thinning the communities, and the Laplacian quadratic form
   (hence every cut) must be preserved to 1 +- eps-ish.

   Both streaming sparsifiers run on the same stream: the paper's two-pass
   Corollary 2, then the single-pass KLMMS chain (one linear sketch, decode
   at the end) — each asserted against the exact pencil bounds.

       dune exec examples/sparsify_cuts.exe *)

open Ds_util
open Ds_graph
open Ds_linalg
open Ds_stream
open Ds_core

let () =
  let m = 24 in
  let n = 2 * m in
  let rng = Prng.create 11 in
  let graph = Gen.barbell m in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:300 graph in
  Fmt.pr "barbell: two K_%d joined by a bridge; %d edges@." m (Graph.num_edges graph);

  let prm =
    { (Sparsify.default_params ~k:2 ~eps:0.5 ~n) with Sparsify.z_rounds = 16; oversample_shift = 3 }
  in
  let r = Sparsify.run (Prng.split rng) ~n ~params:prm stream in
  let h = r.Sparsify.sparsifier in
  Fmt.pr "sparsifier: %d weighted edges (%.0f%% of input), state %a@."
    (Weighted_graph.num_edges h)
    (100.0 *. float_of_int (Weighted_graph.num_edges h) /. float_of_int (Graph.num_edges graph))
    Space.pp_words r.Sparsify.space_words;

  let base = Weighted_graph.of_graph graph in

  (* Cut checks: the bridge cut (weight 1) and a few random cuts. *)
  let community = List.init m (fun i -> i) in
  let bridge_cut = Laplacian.cut_weight base community in
  let bridge_cut_h = Laplacian.cut_weight h community in
  Fmt.pr "bridge cut: base=%.1f sparsifier=%.2f@." bridge_cut bridge_cut_h;

  let crng = Prng.split rng in
  Fmt.pr "@.%-22s %-10s %-12s %-6s@." "cut" "base" "sparsifier" "ratio";
  for i = 1 to 6 do
    let members = List.filter (fun _ -> Prng.bool crng) (List.init n (fun v -> v)) in
    let b = Laplacian.cut_weight base members and s = Laplacian.cut_weight h members in
    if b > 0.0 then Fmt.pr "%-22s %-10.1f %-12.2f %.2f@." (Printf.sprintf "random cut %d" i) b s (s /. b)
  done;

  (* The full spectral statement: extreme generalized eigenvalues. *)
  let bounds = Spectral.pencil_bounds ~base ~candidate:h in
  Fmt.pr "@.quadratic form preserved within [%.2f, %.2f] on every direction@."
    bounds.Spectral.lambda_min bounds.Spectral.lambda_max;
  assert (bounds.Spectral.lambda_min > 0.0);
  assert (bounds.Spectral.kernel_leak < 1e-6);
  Fmt.pr "OK: every cut of the streamed graph survives sparsification.@.";

  (* Single-pass variant: same stream, one linear sketch, decode at the
     end — and a hard accuracy guarantee instead of a Z-budget trade. *)
  let module S1 = Ds_sparsify.Sparsify1p in
  let eps = 0.5 in
  let r1 = S1.run (Prng.split rng) ~n ~params:(S1.default_params ~n ~eps) ~eps stream in
  let h1 = r1.S1.sparsifier in
  Fmt.pr "@.single-pass (KLMMS): %d weighted edges, chain of %d steps, state %a@."
    (Weighted_graph.num_edges h1) r1.S1.chain_steps Space.pp_words r1.S1.space_words;
  Fmt.pr "bridge cut: base=%.1f single-pass=%.2f@." bridge_cut
    (Laplacian.cut_weight h1 community);
  let bounds1 = Spectral.pencil_bounds ~base ~candidate:h1 in
  Fmt.pr "quadratic form preserved within [%.2f, %.2f] (target [%.2f, %.2f])@."
    bounds1.Spectral.lambda_min bounds1.Spectral.lambda_max (1.0 -. eps) (1.0 +. eps);
  assert (bounds1.Spectral.lambda_min >= 1.0 -. eps);
  assert (bounds1.Spectral.lambda_max <= 1.0 +. eps);
  assert (bounds1.Spectral.kernel_leak < 1e-6);
  Fmt.pr "OK: the single pass preserves every cut within (1 +- %.1f).@." eps
