(* Observability: metrics, span traces and the space ledger around a
   sketching pipeline.

       dune exec examples/observability.exe

   The telemetry subsystem (lib/obs) is off by default and costs one
   predicted branch per instrumentation site when disabled.  Turning it
   on makes every library on the hot path -- sharded ingestion, the
   sketch codec, the cluster simulator, both spanner algorithms --
   publish counters, spans and space-ledger entries into one global
   registry, exported here as a human summary, Prometheus text and
   Chrome-traceable JSONL. *)

open Ds_util
open Ds_graph
open Ds_stream
open Ds_core

let () =
  let n = 160 in
  let rng = Prng.create 2014 in

  (* 1. Switch the registry on.  Everything before this line is free. *)
  Ds_obs.Export.enable ();

  let graph = Gen.connected_gnp (Prng.split rng) ~n ~p:0.05 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:1200 graph in

  (* 2. Run an instrumented workload: the two-pass spanner records spans
     for both passes and the clustering step, bumps per-pass update
     counters, and files two space-ledger entries checked against the
     k n^(1+1/k) log n bound of Theorem 1. *)
  let k = 3 in
  let result =
    Two_pass_spanner.run (Prng.split rng) ~n ~params:(Two_pass_spanner.default_params ~k) stream
  in
  Fmt.pr "spanner: %d edges from %d updates@."
    (Graph.num_edges result.Two_pass_spanner.spanner)
    (Array.length stream);

  (* A second workload so the export shows more than one subsystem: ship
     the same stream through the 4-server cluster simulator. *)
  let module CS = Ds_sim.Cluster_sim in
  let shipped = CS.run (Prng.create 2014) ~n ~servers:4 ~partition:CS.Round_robin stream in
  Fmt.pr "cluster: merged forest correct=%b over %d servers@." shipped.CS.forest_correct
    shipped.CS.servers;

  (* 3. Read the registry back.  [pp_summary] is what dynospan prints
     with --metrics; the JSON/Prometheus/JSONL forms feed dashboards. *)
  Fmt.pr "@.-- summary ------------------------------------------------------@.";
  Fmt.pr "%a" Ds_obs.Export.pp_summary ();

  Fmt.pr "@.-- prometheus (excerpt) -----------------------------------------@.";
  let prom = Ds_obs.Export.prometheus () in
  String.split_on_char '\n' prom
  |> List.filter (fun l ->
         List.exists
           (fun p -> String.length l >= String.length p && String.sub l 0 (String.length p) = p)
           [ "# TYPE spanner"; "spanner_"; "cluster_envelopes"; "par_ingest_updates" ])
  |> List.iter print_endline;

  Fmt.pr "@.-- spans (JSONL) ------------------------------------------------@.";
  print_string (Ds_obs.Trace.to_jsonl ());

  (* 4. The ledger entries carry the measured constant in front of the
     theorem bound -- the number the paper leaves inside O(.). *)
  Fmt.pr "@.-- space ledger -------------------------------------------------@.";
  List.iter
    (fun e ->
      Fmt.pr "%a@." Ds_obs.Ledger.pp_entry e;
      assert (Ds_obs.Ledger.check e))
    (Ds_obs.Ledger.entries ());

  Ds_obs.Export.disable ();
  Ds_obs.Export.reset ();
  Fmt.pr "@.OK: one registry, four export formats, zero cost when off.@."
