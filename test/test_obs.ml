(* The telemetry subsystem (lib/obs): registry semantics, merge-under-domains
   determinism, trace-ring wraparound, space-ledger bound checks and the
   exporters.  Everything here must hold with the registry both off (no-ops)
   and on (exact counts), because production code keeps the instrumentation
   compiled in unconditionally. *)

open Ds_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Each test owns the global registry state for its duration. *)
let with_obs f =
  Ds_obs.Export.enable ();
  Ds_obs.Export.reset ();
  Fun.protect
    ~finally:(fun () ->
      Ds_obs.Export.disable ();
      Ds_obs.Export.reset ())
    f

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* -------------------- metrics registry -------------------- *)

let test_counter_disabled_noop () =
  Ds_obs.Export.disable ();
  Ds_obs.Export.reset ();
  let c = Ds_obs.Metrics.counter "test.noop" in
  Ds_obs.Metrics.incr c 5;
  check_int "disabled incr does not count" 0 (Ds_obs.Metrics.value c)

let test_counter_enabled () =
  with_obs (fun () ->
      let c = Ds_obs.Metrics.counter "test.basic" in
      Ds_obs.Metrics.incr c 3;
      Ds_obs.Metrics.incr c 4;
      check_int "counts sum" 7 (Ds_obs.Metrics.value c);
      Ds_obs.Metrics.reset ();
      check_int "reset zeroes, keeps registration" 0 (Ds_obs.Metrics.value c))

let test_register_idempotent () =
  with_obs (fun () ->
      let a = Ds_obs.Metrics.counter "test.same" in
      let b = Ds_obs.Metrics.counter "test.same" in
      Ds_obs.Metrics.incr a 1;
      Ds_obs.Metrics.incr b 1;
      check_int "both handles hit one cell set" 2 (Ds_obs.Metrics.value a);
      check_bool "kind clash rejected" true
        (match Ds_obs.Metrics.gauge "test.same" with
        | exception Invalid_argument _ -> true
        | _ -> false))

let test_gauge_last_writer () =
  with_obs (fun () ->
      let g = Ds_obs.Metrics.gauge "test.gauge" in
      Ds_obs.Metrics.set g 41;
      Ds_obs.Metrics.set g 17;
      check_int "last write wins" 17 (Ds_obs.Metrics.gauge_value g))

let test_histogram_buckets () =
  with_obs (fun () ->
      let h = Ds_obs.Metrics.histogram "test.hist" in
      List.iter (Ds_obs.Metrics.observe h) [ 1; 2; 3; 1000 ];
      let snap = Ds_obs.Metrics.snapshot () in
      let v = List.assoc "test.hist" snap.Ds_obs.Metrics.histograms in
      check_int "count" 4 v.Ds_obs.Metrics.h_count;
      check_int "sum" 1006 v.Ds_obs.Metrics.h_sum;
      (* 1 -> bucket [1,2) le=1; 2,3 -> [2,4) le=3; 1000 -> [512,1024) le=1023 *)
      check_int "le=1" 1 (List.assoc 1 v.Ds_obs.Metrics.h_buckets);
      check_int "le=3" 2 (List.assoc 3 v.Ds_obs.Metrics.h_buckets);
      check_int "le=1023" 1 (List.assoc 1023 v.Ds_obs.Metrics.h_buckets))

(* Sharded counters merged at read must be exact (not sampled) no matter
   how the increments were spread over domains, and two identical runs
   must export identical snapshots. *)
let test_merge_under_domains_exact_and_deterministic () =
  with_obs (fun () ->
      let c = Ds_obs.Metrics.counter "test.domains" in
      let run () =
        Ds_obs.Metrics.reset ();
        let domains =
          Array.init 4 (fun d ->
              Domain.spawn (fun () ->
                  for _ = 1 to 10_000 do
                    Ds_obs.Metrics.incr c (1 + (d mod 2))
                  done))
        in
        Array.iter Domain.join domains;
        Ds_obs.Metrics.to_json (Ds_obs.Metrics.snapshot ())
      in
      let json1 = run () in
      check_int "exact total across domains" ((2 * 10_000 * 1) + (2 * 10_000 * 2))
        (Ds_obs.Metrics.value c);
      let json2 = run () in
      check_string "identical runs export identical snapshots" json1 json2)

(* -------------------- trace ring -------------------- *)

let test_trace_disabled_noop () =
  Ds_obs.Export.disable ();
  Ds_obs.Trace.reset ();
  let r = Ds_obs.Trace.with_span "test.span" (fun () -> 42) in
  check_int "body still runs" 42 r;
  check_int "nothing recorded" 0 (Ds_obs.Trace.recorded ())

let test_trace_records_and_raises () =
  with_obs (fun () ->
      let r = Ds_obs.Trace.with_span "ok" (fun () -> 7) in
      check_int "result threaded" 7 r;
      (match Ds_obs.Trace.with_span "boom" (fun () -> failwith "boom") with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "exception must propagate");
      let spans = Ds_obs.Trace.spans () in
      check_int "both spans kept (raising included)" 2 (List.length spans);
      check_string "order preserved" "ok" (List.hd spans).Ds_obs.Trace.name)

let test_trace_ring_wraparound () =
  with_obs (fun () ->
      Ds_obs.Trace.reset ~capacity:8 ();
      for i = 1 to 11 do
        Ds_obs.Trace.record (Printf.sprintf "s%d" i) ~start_ns:(Int64.of_int i) ~dur_ns:1L
      done;
      check_int "all recordings counted" 11 (Ds_obs.Trace.recorded ());
      let spans = Ds_obs.Trace.spans () in
      check_int "ring keeps the last capacity spans" 8 (List.length spans);
      List.iteri
        (fun i s ->
          check_string
            (Printf.sprintf "slot %d oldest-first" i)
            (Printf.sprintf "s%d" (i + 4))
            s.Ds_obs.Trace.name)
        spans;
      check_bool "invalid capacity rejected" true
        (match Ds_obs.Trace.reset ~capacity:0 () with
        | exception Invalid_argument _ -> true
        | _ -> false);
      Ds_obs.Trace.reset ())

let test_trace_jsonl () =
  with_obs (fun () ->
      Ds_obs.Trace.record "alpha" ~start_ns:10L ~dur_ns:5L;
      let jsonl = Ds_obs.Trace.to_jsonl () in
      (* Ids are fresh per run, so check the line through the parser
         instead of as a literal string. *)
      check_int "one line per span" 1
        (List.length (String.split_on_char '\n' (String.trim jsonl)));
      (match Ds_obs.Trace_tree.parse_jsonl jsonl with
      | [ sp ] ->
          check_string "name survives" "alpha" sp.Ds_obs.Trace.name;
          check_bool "timestamps survive" true
            (sp.Ds_obs.Trace.start_ns = 10L && sp.Ds_obs.Trace.dur_ns = 5L);
          check_bool "span id assigned" true (sp.Ds_obs.Trace.span_id <> 0L);
          check_bool "root span" true (sp.Ds_obs.Trace.parent_id = 0L)
      | spans -> Alcotest.failf "expected one span, parsed %d" (List.length spans));
      (* Pre-causal trace lines (no id fields) must still load. *)
      match
        Ds_obs.Trace_tree.parse_jsonl
          "{\"name\":\"old\",\"start_ns\":1,\"dur_ns\":2,\"domain\":0}\n"
      with
      | [ sp ] ->
          check_string "old-format name" "old" sp.Ds_obs.Trace.name;
          check_bool "old-format ids default to 0" true
            (sp.Ds_obs.Trace.span_id = 0L && sp.Ds_obs.Trace.trace_id = 0L)
      | spans -> Alcotest.failf "expected one old span, parsed %d" (List.length spans))

let test_trace_nesting_and_propagation () =
  with_obs (fun () ->
      Ds_obs.Trace.reset ();
      let inner_ctx = ref None in
      Ds_obs.Trace.with_span "outer" (fun () ->
          Ds_obs.Trace.with_span "inner" (fun () ->
              inner_ctx := Ds_obs.Trace.current_context ()));
      (match Ds_obs.Trace.spans () with
      | [ inner; outer ] ->
          (* spans are pushed on close: inner first *)
          check_string "inner closes first" "inner" inner.Ds_obs.Trace.name;
          check_bool "inner parented under outer" true
            (inner.Ds_obs.Trace.parent_id = outer.Ds_obs.Trace.span_id);
          check_bool "same trace" true
            (inner.Ds_obs.Trace.trace_id = outer.Ds_obs.Trace.trace_id);
          check_bool "outer is a root" true (outer.Ds_obs.Trace.parent_id = 0L);
          check_bool "context captured inner" true
            (match !inner_ctx with
            | Some c -> c.Ds_obs.Trace.span_id = inner.Ds_obs.Trace.span_id
            | None -> false)
      | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans));
      (* Carried context parents a span recorded on another "domain". *)
      Ds_obs.Trace.reset ();
      Ds_obs.Trace.with_span "root" (fun () ->
          let ctx = Option.get (Ds_obs.Trace.current_context ()) in
          Ds_obs.Trace.with_context (Some ctx) (fun () ->
              Ds_obs.Trace.with_span "remote" (fun () -> ())));
      match Ds_obs.Trace.spans () with
      | [ remote; root ] ->
          check_bool "remote links under carried context" true
            (remote.Ds_obs.Trace.parent_id = root.Ds_obs.Trace.span_id
            && remote.Ds_obs.Trace.trace_id = root.Ds_obs.Trace.trace_id)
      | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans))

let test_trace_pool_propagation () =
  with_obs (fun () ->
      Ds_obs.Trace.reset ();
      Ds_par.Pool.with_pool ~domains:2 (fun pool ->
          Ds_obs.Trace.with_span "submit.root" (fun () ->
              ignore
                (Ds_par.Pool.run pool
                   (List.init 4 (fun i () ->
                        Ds_obs.Trace.with_span "submit.task" (fun () -> i))))));
      let spans = Ds_obs.Trace.spans () in
      let root =
        List.find (fun s -> s.Ds_obs.Trace.name = "submit.root") spans
      in
      let tasks =
        List.filter (fun s -> s.Ds_obs.Trace.name = "submit.task") spans
      in
      check_int "all worker spans recorded" 4 (List.length tasks);
      List.iter
        (fun t ->
          check_bool "task parented under submitter" true
            (t.Ds_obs.Trace.parent_id = root.Ds_obs.Trace.span_id);
          check_bool "task in submitter's trace" true
            (t.Ds_obs.Trace.trace_id = root.Ds_obs.Trace.trace_id))
        tasks)

(* -------------------- trace tree + critical path -------------------- *)

let test_trace_tree_and_critical_path () =
  with_obs (fun () ->
      Ds_obs.Trace.reset ();
      Ds_obs.Trace.with_span "root" (fun () ->
          Ds_obs.Trace.with_span "a" (fun () ->
              Ds_obs.Trace.with_span "a1" (fun () -> Unix.sleepf 0.002));
          Ds_obs.Trace.with_span "b" (fun () -> Unix.sleepf 0.001));
      let forest = Ds_obs.Trace_tree.of_spans (Ds_obs.Trace.spans ()) in
      check_int "one root" 1 (List.length forest.Ds_obs.Trace_tree.roots);
      check_int "no orphans" 0 forest.Ds_obs.Trace_tree.orphans;
      check_int "no cycles" 0 forest.Ds_obs.Trace_tree.cycles_broken;
      let root = Option.get (Ds_obs.Trace_tree.main_root forest) in
      check_string "root name" "root" root.Ds_obs.Trace_tree.span.Ds_obs.Trace.name;
      check_int "root has two children" 2
        (List.length root.Ds_obs.Trace_tree.children);
      let path = Ds_obs.Trace_tree.critical_path root in
      let total = Ds_obs.Trace_tree.path_total path in
      check_bool "critical path partitions the root exactly" true
        (total = root.Ds_obs.Trace_tree.span.Ds_obs.Trace.dur_ns);
      (* self time of root = dur - children (they don't overlap here) *)
      let rollups = Ds_obs.Trace_tree.rollups forest in
      check_int "one rollup row per name" 4 (List.length rollups);
      let r_a1 =
        List.find (fun r -> r.Ds_obs.Trace_tree.r_name = "a1") rollups
      in
      check_int "a1 count" 1 r_a1.Ds_obs.Trace_tree.r_count;
      check_bool "a1 self = total (leaf)" true
        (r_a1.Ds_obs.Trace_tree.r_self_ns = r_a1.Ds_obs.Trace_tree.r_total_ns);
      (* Exporters on the same spans. *)
      let chrome = Ds_obs.Trace_tree.to_chrome_json (Ds_obs.Trace.spans ()) in
      List.iter
        (fun needle -> check_bool ("chrome has " ^ needle) true (contains ~needle chrome))
        [ "\"ph\":\"X\""; "\"ts\":"; "\"dur\":"; "\"pid\":"; "\"tid\":" ];
      let folded = Ds_obs.Trace_tree.to_folded forest in
      check_bool "folded has root;a;a1 stack" true
        (contains ~needle:"root;a;a1 " folded))

let test_spans_dropped_reported () =
  with_obs (fun () ->
      Ds_obs.Trace.reset ~capacity:4 ();
      for i = 1 to 10 do
        Ds_obs.Trace.record (Printf.sprintf "d%d" i) ~start_ns:(Int64.of_int i) ~dur_ns:1L
      done;
      check_int "dropped = recorded - kept" 6 (Ds_obs.Trace.dropped ());
      let json = Ds_obs.Export.report_json () in
      check_bool "report_json has spans_dropped" true
        (contains ~needle:"\"spans_dropped\":6" json);
      let summary = Format.asprintf "%a" Ds_obs.Export.pp_summary () in
      check_bool "pp_summary warns about drops" true
        (contains ~needle:"WARNING" summary && contains ~needle:"6" summary);
      Ds_obs.Trace.reset ();
      let clean = Format.asprintf "%a" Ds_obs.Export.pp_summary () in
      check_bool "no warning without drops" false (contains ~needle:"WARNING" clean))

let test_prometheus_sanitize () =
  with_obs (fun () ->
      let c = Ds_obs.Metrics.counter "weird/name:with.bad chars-1" in
      Ds_obs.Metrics.incr c 1;
      let prom = Ds_obs.Export.prometheus () in
      check_bool "sanitized family" true
        (contains ~needle:"# TYPE weird_name:with_bad_chars_1 counter" prom);
      check_bool "sanitized sample" true
        (contains ~needle:"weird_name:with_bad_chars_1 1" prom);
      (* every exported name obeys the Prometheus charset *)
      let ok_first = function 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false in
      String.split_on_char '\n' prom
      |> List.iter (fun line ->
             if line <> "" && not (String.length line >= 1 && line.[0] = '#') then
               check_bool ("legal first char: " ^ line) true (ok_first line.[0])))

(* -------------------- space ledger -------------------- *)

let test_ledger_constant_and_check () =
  with_obs (fun () ->
      Ds_obs.Ledger.record ~wire_bytes:64 ~phase:"test.phase" ~words:500 100.0;
      match Ds_obs.Ledger.entries () with
      | [ e ] ->
          check_string "phase" "test.phase" e.Ds_obs.Ledger.phase;
          check_int "words" 500 e.Ds_obs.Ledger.words;
          check_int "wire" 64 e.Ds_obs.Ledger.wire_bytes;
          Alcotest.(check (float 1e-9)) "constant = words / bound" 5.0 e.Ds_obs.Ledger.constant;
          check_bool "within default tolerance" true (Ds_obs.Ledger.check e);
          check_bool "fails a tight tolerance" false (Ds_obs.Ledger.check ~tolerance:2.0 e)
      | es -> Alcotest.failf "expected one entry, got %d" (List.length es))

let test_ledger_rejects_bad_bounds () =
  with_obs (fun () ->
      check_bool "bound <= 0 rejected" true
        (match Ds_obs.Ledger.record ~phase:"bad" ~words:1 0.0 with
        | exception Invalid_argument _ -> true
        | _ -> false);
      check_bool "negative words rejected" true
        (match Ds_obs.Ledger.record ~phase:"bad" ~words:(-1) 10.0 with
        | exception Invalid_argument _ -> true
        | _ -> false))

let test_ledger_disabled_noop () =
  Ds_obs.Export.disable ();
  Ds_obs.Export.reset ();
  Ds_obs.Ledger.record ~phase:"off" ~words:1 10.0;
  check_int "no entry recorded while disabled" 0 (List.length (Ds_obs.Ledger.entries ()))

(* -------------------- exporters -------------------- *)

let test_exporters_smoke () =
  with_obs (fun () ->
      let c = Ds_obs.Metrics.counter "exp.count" in
      let g = Ds_obs.Metrics.gauge "exp.gauge" in
      let h = Ds_obs.Metrics.histogram "exp.hist" in
      Ds_obs.Metrics.incr c 2;
      Ds_obs.Metrics.set g 9;
      Ds_obs.Metrics.observe h 3;
      Ds_obs.Trace.record "exp.span" ~start_ns:1L ~dur_ns:2L;
      Ds_obs.Ledger.record ~phase:"exp.phase" ~words:10 100.0;
      let json = Ds_obs.Export.report_json () in
      List.iter
        (fun needle -> check_bool ("json has " ^ needle) true (contains ~needle json))
        [
          "\"schema\":\"ds_obs/v1\"";
          "\"exp.count\":2";
          "\"exp.gauge\":9";
          "\"exp.span\"";
          "\"exp.phase\"";
          "\"within_bound\":true";
        ];
      let prom = Ds_obs.Export.prometheus () in
      List.iter
        (fun needle -> check_bool ("prometheus has " ^ needle) true (contains ~needle prom))
        [
          "# TYPE exp_count counter";
          "exp_count 2";
          "exp_gauge 9";
          "exp_hist_bucket{le=\"+Inf\"} 1";
          "exp_hist_sum 3";
          "exp_hist_count 1";
        ])

(* -------------------- quantile sketch -------------------- *)

let nearest_rank sorted q =
  let n = Array.length sorted in
  let r = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
  float_of_int sorted.(r - 1)

(* The estimator's contract: the returned value is the midpoint of the
   cell holding the true nearest-rank sample, so it is within half a
   cell width — at most [v/64 + 0.5] — of the truth.  We assert the
   looser [v/20 + 1] (5%), the bound the serve-path consumers rely on. *)
let check_rank_error ~msg samples qs =
  let t = Ds_obs.Quantile.make () in
  List.iter (Ds_obs.Quantile.observe t) samples;
  let sorted = Array.of_list samples in
  Array.sort compare sorted;
  List.iter
    (fun q ->
      let truth = nearest_rank sorted q in
      let est = Ds_obs.Quantile.estimate t q in
      let bound = (truth /. 20.0) +. 1.0 in
      if Float.abs (est -. truth) > bound then
        Alcotest.failf "%s: q=%.3f estimate %.1f vs truth %.1f (bound %.1f, n=%d)" msg q
          est truth bound (Array.length sorted))
    qs

let test_quantile_exact_small () =
  (* Below 64 every cell has width 1: the estimate is the exact
     nearest-rank sample, not an approximation. *)
  let t = Ds_obs.Quantile.make () in
  for v = 0 to 63 do
    Ds_obs.Quantile.observe t v
  done;
  check_int "count" 64 (Ds_obs.Quantile.count t);
  check_int "sum" (63 * 64 / 2) (Ds_obs.Quantile.sum t);
  List.iter
    (fun (q, expect) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "q=%.3f exact" q)
        expect
        (Ds_obs.Quantile.estimate t q))
    [ (0.0, 0.0); (0.5, 31.0); (1.0, 63.0) ]

let test_quantile_empty_and_negative () =
  let t = Ds_obs.Quantile.make () in
  check_bool "empty estimate is nan" true (Float.is_nan (Ds_obs.Quantile.estimate t 0.5));
  let s = Ds_obs.Quantile.summarize t in
  check_int "empty count" 0 s.Ds_obs.Quantile.s_count;
  Ds_obs.Quantile.observe t (-17);
  Alcotest.(check (float 0.0)) "negative clamps to 0" 0.0 (Ds_obs.Quantile.estimate t 0.5)

let test_quantile_zipf_adversarial () =
  (* Heavy head, long tail, then a far-out spike band: the shape that
     breaks mean-based reporting and uniform histograms. *)
  let samples =
    List.init 2000 (fun i -> 1_000_000 / (i + 1))
    @ List.init 25 (fun i -> 800_000_000 + (i * 1_000_000))
  in
  check_rank_error ~msg:"zipf+spikes" samples [ 0.5; 0.9; 0.99; 0.999 ]

let prop_quantile_rank_error =
  QCheck.Test.make ~name:"estimate within 5% rank error on any sample set" ~count:60
    QCheck.(
      list_of_size Gen.(int_range 1 400)
        (oneofl [ 3; 64; 4096; 1_000_000; 999_999_937; 17; 255 ]))
  @@ fun seeds ->
  (* Grow each seed into a deterministic burst so magnitudes mix. *)
  let samples = List.concat_map (fun s -> [ s; s / 3; (s * 2) + 1 ]) seeds in
  let t = Ds_obs.Quantile.make () in
  List.iter (Ds_obs.Quantile.observe t) samples;
  let sorted = Array.of_list samples in
  Array.sort compare sorted;
  List.for_all
    (fun q ->
      let truth = nearest_rank sorted q in
      Float.abs (Ds_obs.Quantile.estimate t q -. truth) <= (truth /. 20.0) +. 1.0)
    [ 0.5; 0.9; 0.99; 0.999 ]

let prop_quantile_merge_is_concat =
  QCheck.Test.make ~name:"merge_into = sketch of concatenated streams" ~count:60
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 200) (int_range 0 1_000_000_000))
        (list_of_size Gen.(int_range 0 200) (int_range 0 1_000_000_000)))
  @@ fun (xs, ys) ->
  let a = Ds_obs.Quantile.make () and b = Ds_obs.Quantile.make () in
  List.iter (Ds_obs.Quantile.observe a) xs;
  List.iter (Ds_obs.Quantile.observe b) ys;
  Ds_obs.Quantile.merge_into ~into:a b;
  let whole = Ds_obs.Quantile.make () in
  List.iter (Ds_obs.Quantile.observe whole) (xs @ ys);
  (* Cells are pure counts, so the merged summary must be bit-identical
     to the concatenation's — determinism, not approximation. *)
  Ds_obs.Quantile.summarize a = Ds_obs.Quantile.summarize whole

let test_quantile_sharded_under_domains () =
  with_obs (fun () ->
      let q = Ds_obs.Quantile.quantile "test.q.sharded" in
      let q' = Ds_obs.Quantile.quantile "test.q.sharded" in
      check_bool "registration idempotent" true (q == q');
      let per_domain = 5_000 in
      let work () =
        for i = 1 to per_domain do
          Ds_obs.Quantile.observe q (i * 17)
        done
      in
      let domains = List.init 4 (fun _ -> Domain.spawn work) in
      work ();
      List.iter Domain.join domains;
      check_int "no observation lost across domains" (5 * per_domain)
        (Ds_obs.Quantile.count q);
      (* Every domain wrote the same multiset, so quantiles match the
         single-domain truth within the cell bound. *)
      let truth = float_of_int (int_of_float (0.99 *. float_of_int per_domain) * 17) in
      let est = Ds_obs.Quantile.estimate q 0.99 in
      check_bool "p99 within bound after sharded writes" true
        (Float.abs (est -. truth) <= (truth /. 20.0) +. 17.0))

let test_quantile_gating_and_export () =
  Ds_obs.Export.disable ();
  Ds_obs.Export.reset ();
  let q = Ds_obs.Quantile.quantile "test.q.gated" in
  Ds_obs.Quantile.observe q 42;
  check_int "gated sketch ignores observations when disabled" 0
    (Ds_obs.Quantile.count q);
  with_obs (fun () ->
      let q = Ds_obs.Quantile.quantile "test.q.export" in
      List.iter (Ds_obs.Quantile.observe q) [ 10; 20; 30; 40 ];
      let json = Ds_obs.Export.report_json () in
      check_bool "report_json has quantiles section" true
        (contains ~needle:"\"quantiles\":" json);
      check_bool "report_json has the sketch" true
        (contains ~needle:"\"test.q.export\":{\"count\":4" json);
      (* The hand-rolled report must stay parseable by the in-tree
         reader — serve-stats and the flight post-mortem depend on it. *)
      (match Json.parse json with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "report_json unparseable: %s" m);
      let prom = Ds_obs.Export.prometheus () in
      check_bool "prometheus summary type" true
        (contains ~needle:"# TYPE test_q_export summary" prom);
      check_bool "prometheus p99 series" true
        (contains ~needle:"test_q_export{quantile=\"0.99\"}" prom);
      Ds_obs.Quantile.unregister "test.q.export";
      check_bool "unregistered sketch leaves the export" false
        (contains ~needle:"test.q.export" (Ds_obs.Export.report_json ())))

(* -------------------- end-to-end: instrumented spanner -------------------- *)

let test_spanner_files_ledger_entries () =
  with_obs (fun () ->
      let n = 48 and k = 2 in
      let rng = Prng.create 2014 in
      let g = Ds_graph.Gen.connected_gnp (Prng.split rng) ~n ~p:0.15 in
      let stream = Ds_stream.Stream_gen.with_churn (Prng.split rng) ~decoys:100 g in
      let _r =
        Ds_core.Two_pass_spanner.run (Prng.split rng) ~n
          ~params:(Ds_core.Two_pass_spanner.default_params ~k)
          stream
      in
      let entries = Ds_obs.Ledger.entries () in
      let find phase = List.find (fun e -> e.Ds_obs.Ledger.phase = phase) entries in
      let p1 = find "two_pass.pass1" and total = find "two_pass.total" in
      check_bool "pass1 words positive" true (p1.Ds_obs.Ledger.words > 0);
      check_bool "pass1 wire bytes positive" true (p1.Ds_obs.Ledger.wire_bytes > 0);
      check_bool "pass1 within bound" true (Ds_obs.Ledger.check p1);
      check_bool "total >= pass1" true
        (total.Ds_obs.Ledger.words >= p1.Ds_obs.Ledger.words);
      let snap = Ds_obs.Metrics.snapshot () in
      let counter name = List.assoc name snap.Ds_obs.Metrics.counters in
      check_int "pass1 saw every update" (Array.length stream) (counter "spanner.pass1.updates");
      check_int "pass2 saw every update" (Array.length stream) (counter "spanner.pass2.updates");
      check_bool "passes traced" true
        (List.exists
           (fun s -> s.Ds_obs.Trace.name = "spanner.pass2")
           (Ds_obs.Trace.spans ())))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "disabled no-op" `Quick test_counter_disabled_noop;
          Alcotest.test_case "counter" `Quick test_counter_enabled;
          Alcotest.test_case "register idempotent" `Quick test_register_idempotent;
          Alcotest.test_case "gauge" `Quick test_gauge_last_writer;
          Alcotest.test_case "histogram" `Quick test_histogram_buckets;
          Alcotest.test_case "merge under domains" `Quick
            test_merge_under_domains_exact_and_deterministic;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled no-op" `Quick test_trace_disabled_noop;
          Alcotest.test_case "records and raises" `Quick test_trace_records_and_raises;
          Alcotest.test_case "ring wraparound" `Quick test_trace_ring_wraparound;
          Alcotest.test_case "jsonl" `Quick test_trace_jsonl;
          Alcotest.test_case "nesting + carried context" `Quick
            test_trace_nesting_and_propagation;
          Alcotest.test_case "pool propagation" `Quick test_trace_pool_propagation;
          Alcotest.test_case "tree + critical path" `Quick
            test_trace_tree_and_critical_path;
          Alcotest.test_case "spans dropped surfaced" `Quick test_spans_dropped_reported;
          Alcotest.test_case "prometheus sanitize" `Quick test_prometheus_sanitize;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "constant and check" `Quick test_ledger_constant_and_check;
          Alcotest.test_case "rejects bad bounds" `Quick test_ledger_rejects_bad_bounds;
          Alcotest.test_case "disabled no-op" `Quick test_ledger_disabled_noop;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "exact below 64" `Quick test_quantile_exact_small;
          Alcotest.test_case "empty + negative" `Quick test_quantile_empty_and_negative;
          Alcotest.test_case "zipf + spike band" `Quick test_quantile_zipf_adversarial;
          Alcotest.test_case "sharded under domains" `Quick
            test_quantile_sharded_under_domains;
          Alcotest.test_case "gating + export" `Quick test_quantile_gating_and_export;
          QCheck_alcotest.to_alcotest prop_quantile_rank_error;
          QCheck_alcotest.to_alcotest prop_quantile_merge_is_concat;
        ] );
      ("export", [ Alcotest.test_case "json + prometheus" `Quick test_exporters_smoke ]);
      ( "end-to-end",
        [ Alcotest.test_case "spanner ledger + counters" `Quick test_spanner_files_ledger_entries ]
      );
    ]
