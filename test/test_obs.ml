(* The telemetry subsystem (lib/obs): registry semantics, merge-under-domains
   determinism, trace-ring wraparound, space-ledger bound checks and the
   exporters.  Everything here must hold with the registry both off (no-ops)
   and on (exact counts), because production code keeps the instrumentation
   compiled in unconditionally. *)

open Ds_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Each test owns the global registry state for its duration. *)
let with_obs f =
  Ds_obs.Export.enable ();
  Ds_obs.Export.reset ();
  Fun.protect
    ~finally:(fun () ->
      Ds_obs.Export.disable ();
      Ds_obs.Export.reset ())
    f

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* -------------------- metrics registry -------------------- *)

let test_counter_disabled_noop () =
  Ds_obs.Export.disable ();
  Ds_obs.Export.reset ();
  let c = Ds_obs.Metrics.counter "test.noop" in
  Ds_obs.Metrics.incr c 5;
  check_int "disabled incr does not count" 0 (Ds_obs.Metrics.value c)

let test_counter_enabled () =
  with_obs (fun () ->
      let c = Ds_obs.Metrics.counter "test.basic" in
      Ds_obs.Metrics.incr c 3;
      Ds_obs.Metrics.incr c 4;
      check_int "counts sum" 7 (Ds_obs.Metrics.value c);
      Ds_obs.Metrics.reset ();
      check_int "reset zeroes, keeps registration" 0 (Ds_obs.Metrics.value c))

let test_register_idempotent () =
  with_obs (fun () ->
      let a = Ds_obs.Metrics.counter "test.same" in
      let b = Ds_obs.Metrics.counter "test.same" in
      Ds_obs.Metrics.incr a 1;
      Ds_obs.Metrics.incr b 1;
      check_int "both handles hit one cell set" 2 (Ds_obs.Metrics.value a);
      check_bool "kind clash rejected" true
        (match Ds_obs.Metrics.gauge "test.same" with
        | exception Invalid_argument _ -> true
        | _ -> false))

let test_gauge_last_writer () =
  with_obs (fun () ->
      let g = Ds_obs.Metrics.gauge "test.gauge" in
      Ds_obs.Metrics.set g 41;
      Ds_obs.Metrics.set g 17;
      check_int "last write wins" 17 (Ds_obs.Metrics.gauge_value g))

let test_histogram_buckets () =
  with_obs (fun () ->
      let h = Ds_obs.Metrics.histogram "test.hist" in
      List.iter (Ds_obs.Metrics.observe h) [ 1; 2; 3; 1000 ];
      let snap = Ds_obs.Metrics.snapshot () in
      let v = List.assoc "test.hist" snap.Ds_obs.Metrics.histograms in
      check_int "count" 4 v.Ds_obs.Metrics.h_count;
      check_int "sum" 1006 v.Ds_obs.Metrics.h_sum;
      (* 1 -> bucket [1,2) le=1; 2,3 -> [2,4) le=3; 1000 -> [512,1024) le=1023 *)
      check_int "le=1" 1 (List.assoc 1 v.Ds_obs.Metrics.h_buckets);
      check_int "le=3" 2 (List.assoc 3 v.Ds_obs.Metrics.h_buckets);
      check_int "le=1023" 1 (List.assoc 1023 v.Ds_obs.Metrics.h_buckets))

(* Sharded counters merged at read must be exact (not sampled) no matter
   how the increments were spread over domains, and two identical runs
   must export identical snapshots. *)
let test_merge_under_domains_exact_and_deterministic () =
  with_obs (fun () ->
      let c = Ds_obs.Metrics.counter "test.domains" in
      let run () =
        Ds_obs.Metrics.reset ();
        let domains =
          Array.init 4 (fun d ->
              Domain.spawn (fun () ->
                  for _ = 1 to 10_000 do
                    Ds_obs.Metrics.incr c (1 + (d mod 2))
                  done))
        in
        Array.iter Domain.join domains;
        Ds_obs.Metrics.to_json (Ds_obs.Metrics.snapshot ())
      in
      let json1 = run () in
      check_int "exact total across domains" ((2 * 10_000 * 1) + (2 * 10_000 * 2))
        (Ds_obs.Metrics.value c);
      let json2 = run () in
      check_string "identical runs export identical snapshots" json1 json2)

(* -------------------- trace ring -------------------- *)

let test_trace_disabled_noop () =
  Ds_obs.Export.disable ();
  Ds_obs.Trace.reset ();
  let r = Ds_obs.Trace.with_span "test.span" (fun () -> 42) in
  check_int "body still runs" 42 r;
  check_int "nothing recorded" 0 (Ds_obs.Trace.recorded ())

let test_trace_records_and_raises () =
  with_obs (fun () ->
      let r = Ds_obs.Trace.with_span "ok" (fun () -> 7) in
      check_int "result threaded" 7 r;
      (match Ds_obs.Trace.with_span "boom" (fun () -> failwith "boom") with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "exception must propagate");
      let spans = Ds_obs.Trace.spans () in
      check_int "both spans kept (raising included)" 2 (List.length spans);
      check_string "order preserved" "ok" (List.hd spans).Ds_obs.Trace.name)

let test_trace_ring_wraparound () =
  with_obs (fun () ->
      Ds_obs.Trace.reset ~capacity:8 ();
      for i = 1 to 11 do
        Ds_obs.Trace.record (Printf.sprintf "s%d" i) ~start_ns:(Int64.of_int i) ~dur_ns:1L
      done;
      check_int "all recordings counted" 11 (Ds_obs.Trace.recorded ());
      let spans = Ds_obs.Trace.spans () in
      check_int "ring keeps the last capacity spans" 8 (List.length spans);
      List.iteri
        (fun i s ->
          check_string
            (Printf.sprintf "slot %d oldest-first" i)
            (Printf.sprintf "s%d" (i + 4))
            s.Ds_obs.Trace.name)
        spans;
      check_bool "invalid capacity rejected" true
        (match Ds_obs.Trace.reset ~capacity:0 () with
        | exception Invalid_argument _ -> true
        | _ -> false);
      Ds_obs.Trace.reset ())

let test_trace_jsonl () =
  with_obs (fun () ->
      Ds_obs.Trace.record "alpha" ~start_ns:10L ~dur_ns:5L;
      let jsonl = Ds_obs.Trace.to_jsonl () in
      check_string "one line per span"
        "{\"name\":\"alpha\",\"start_ns\":10,\"dur_ns\":5,\"domain\":0}\n" jsonl)

(* -------------------- space ledger -------------------- *)

let test_ledger_constant_and_check () =
  with_obs (fun () ->
      Ds_obs.Ledger.record ~wire_bytes:64 ~phase:"test.phase" ~words:500 100.0;
      match Ds_obs.Ledger.entries () with
      | [ e ] ->
          check_string "phase" "test.phase" e.Ds_obs.Ledger.phase;
          check_int "words" 500 e.Ds_obs.Ledger.words;
          check_int "wire" 64 e.Ds_obs.Ledger.wire_bytes;
          Alcotest.(check (float 1e-9)) "constant = words / bound" 5.0 e.Ds_obs.Ledger.constant;
          check_bool "within default tolerance" true (Ds_obs.Ledger.check e);
          check_bool "fails a tight tolerance" false (Ds_obs.Ledger.check ~tolerance:2.0 e)
      | es -> Alcotest.failf "expected one entry, got %d" (List.length es))

let test_ledger_rejects_bad_bounds () =
  with_obs (fun () ->
      check_bool "bound <= 0 rejected" true
        (match Ds_obs.Ledger.record ~phase:"bad" ~words:1 0.0 with
        | exception Invalid_argument _ -> true
        | _ -> false);
      check_bool "negative words rejected" true
        (match Ds_obs.Ledger.record ~phase:"bad" ~words:(-1) 10.0 with
        | exception Invalid_argument _ -> true
        | _ -> false))

let test_ledger_disabled_noop () =
  Ds_obs.Export.disable ();
  Ds_obs.Export.reset ();
  Ds_obs.Ledger.record ~phase:"off" ~words:1 10.0;
  check_int "no entry recorded while disabled" 0 (List.length (Ds_obs.Ledger.entries ()))

(* -------------------- exporters -------------------- *)

let test_exporters_smoke () =
  with_obs (fun () ->
      let c = Ds_obs.Metrics.counter "exp.count" in
      let g = Ds_obs.Metrics.gauge "exp.gauge" in
      let h = Ds_obs.Metrics.histogram "exp.hist" in
      Ds_obs.Metrics.incr c 2;
      Ds_obs.Metrics.set g 9;
      Ds_obs.Metrics.observe h 3;
      Ds_obs.Trace.record "exp.span" ~start_ns:1L ~dur_ns:2L;
      Ds_obs.Ledger.record ~phase:"exp.phase" ~words:10 100.0;
      let json = Ds_obs.Export.report_json () in
      List.iter
        (fun needle -> check_bool ("json has " ^ needle) true (contains ~needle json))
        [
          "\"schema\":\"ds_obs/v1\"";
          "\"exp.count\":2";
          "\"exp.gauge\":9";
          "\"exp.span\"";
          "\"exp.phase\"";
          "\"within_bound\":true";
        ];
      let prom = Ds_obs.Export.prometheus () in
      List.iter
        (fun needle -> check_bool ("prometheus has " ^ needle) true (contains ~needle prom))
        [
          "# TYPE exp_count counter";
          "exp_count 2";
          "exp_gauge 9";
          "exp_hist_bucket{le=\"+Inf\"} 1";
          "exp_hist_sum 3";
          "exp_hist_count 1";
        ])

(* -------------------- end-to-end: instrumented spanner -------------------- *)

let test_spanner_files_ledger_entries () =
  with_obs (fun () ->
      let n = 48 and k = 2 in
      let rng = Prng.create 2014 in
      let g = Ds_graph.Gen.connected_gnp (Prng.split rng) ~n ~p:0.15 in
      let stream = Ds_stream.Stream_gen.with_churn (Prng.split rng) ~decoys:100 g in
      let _r =
        Ds_core.Two_pass_spanner.run (Prng.split rng) ~n
          ~params:(Ds_core.Two_pass_spanner.default_params ~k)
          stream
      in
      let entries = Ds_obs.Ledger.entries () in
      let find phase = List.find (fun e -> e.Ds_obs.Ledger.phase = phase) entries in
      let p1 = find "two_pass.pass1" and total = find "two_pass.total" in
      check_bool "pass1 words positive" true (p1.Ds_obs.Ledger.words > 0);
      check_bool "pass1 wire bytes positive" true (p1.Ds_obs.Ledger.wire_bytes > 0);
      check_bool "pass1 within bound" true (Ds_obs.Ledger.check p1);
      check_bool "total >= pass1" true
        (total.Ds_obs.Ledger.words >= p1.Ds_obs.Ledger.words);
      let snap = Ds_obs.Metrics.snapshot () in
      let counter name = List.assoc name snap.Ds_obs.Metrics.counters in
      check_int "pass1 saw every update" (Array.length stream) (counter "spanner.pass1.updates");
      check_int "pass2 saw every update" (Array.length stream) (counter "spanner.pass2.updates");
      check_bool "passes traced" true
        (List.exists
           (fun s -> s.Ds_obs.Trace.name = "spanner.pass2")
           (Ds_obs.Trace.spans ())))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "disabled no-op" `Quick test_counter_disabled_noop;
          Alcotest.test_case "counter" `Quick test_counter_enabled;
          Alcotest.test_case "register idempotent" `Quick test_register_idempotent;
          Alcotest.test_case "gauge" `Quick test_gauge_last_writer;
          Alcotest.test_case "histogram" `Quick test_histogram_buckets;
          Alcotest.test_case "merge under domains" `Quick
            test_merge_under_domains_exact_and_deterministic;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled no-op" `Quick test_trace_disabled_noop;
          Alcotest.test_case "records and raises" `Quick test_trace_records_and_raises;
          Alcotest.test_case "ring wraparound" `Quick test_trace_ring_wraparound;
          Alcotest.test_case "jsonl" `Quick test_trace_jsonl;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "constant and check" `Quick test_ledger_constant_and_check;
          Alcotest.test_case "rejects bad bounds" `Quick test_ledger_rejects_bad_bounds;
          Alcotest.test_case "disabled no-op" `Quick test_ledger_disabled_noop;
        ] );
      ("export", [ Alcotest.test_case "json + prometheus" `Quick test_exporters_smoke ]);
      ( "end-to-end",
        [ Alcotest.test_case "spanner ledger + counters" `Quick test_spanner_files_ledger_entries ]
      );
    ]
