open Ds_util
open Ds_sketch

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Apply an association-list vector to any update function. *)
let apply_vec update vec = List.iter (fun (i, w) -> update ~index:i ~delta:w) vec

(* A random vector with [support] distinct non-zero coordinates over [dim],
   built incrementally with inserts and partial deletes so that the final
   value is known. *)
let random_sparse_vec rng ~dim ~support =
  let chosen = Hashtbl.create support in
  while Hashtbl.length chosen < support do
    let i = Prng.int rng dim in
    if not (Hashtbl.mem chosen i) then
      Hashtbl.add chosen i (1 + Prng.int rng 5)
  done;
  Hashtbl.fold (fun i w acc -> (i, w) :: acc) chosen []

let sort_vec v = List.sort compare v

(* -------------------- One_sparse -------------------- *)

let test_one_sparse_zero () =
  let s = One_sparse.create (Prng.create 1) ~dim:100 in
  check_bool "fresh is zero" true (One_sparse.decode s = Zero)

let test_one_sparse_single () =
  let s = One_sparse.create (Prng.create 2) ~dim:100 in
  One_sparse.update s ~index:42 ~delta:3;
  (match One_sparse.decode s with
  | One (i, w) ->
      check_int "index" 42 i;
      check_int "weight" 3 w
  | Zero | Many -> Alcotest.fail "expected One");
  One_sparse.update s ~index:42 ~delta:(-3);
  check_bool "back to zero" true (One_sparse.decode s = Zero)

let test_one_sparse_index_zero () =
  let s = One_sparse.create (Prng.create 21) ~dim:100 in
  One_sparse.update s ~index:0 ~delta:7;
  match One_sparse.decode s with
  | One (i, w) ->
      check_int "index 0 recoverable" 0 i;
      check_int "weight" 7 w
  | Zero | Many -> Alcotest.fail "expected One at index 0"

let test_one_sparse_many () =
  let s = One_sparse.create (Prng.create 3) ~dim:100 in
  One_sparse.update s ~index:1 ~delta:1;
  One_sparse.update s ~index:2 ~delta:1;
  check_bool "two coordinates detected" true (One_sparse.decode s = Many)

let test_one_sparse_cancel_to_one () =
  let s = One_sparse.create (Prng.create 4) ~dim:1000 in
  One_sparse.update s ~index:10 ~delta:5;
  One_sparse.update s ~index:999 ~delta:2;
  One_sparse.update s ~index:999 ~delta:(-2);
  match One_sparse.decode s with
  | One (i, w) ->
      check_int "survivor index" 10 i;
      check_int "survivor weight" 5 w
  | Zero | Many -> Alcotest.fail "expected One after cancellation"

let test_one_sparse_linearity () =
  let rng = Prng.create 5 in
  let mk () = One_sparse.create (Prng.copy rng) ~dim:50 in
  let a = mk () and b = mk () in
  One_sparse.update a ~index:7 ~delta:2;
  One_sparse.update b ~index:7 ~delta:3;
  One_sparse.add a b;
  (match One_sparse.decode a with
  | One (i, w) ->
      check_int "merged index" 7 i;
      check_int "merged weight" 5 w
  | Zero | Many -> Alcotest.fail "expected One after merge");
  One_sparse.sub a b;
  One_sparse.sub a b;
  match One_sparse.decode a with
  | One (i, w) ->
      check_int "sub index" 7 i;
      check_int "sub weight" (-1) w
  | Zero | Many -> Alcotest.fail "expected One after sub"

let test_one_sparse_adversarial_many () =
  (* Vectors engineered so that c1/c0 lands on a valid index must still be
     rejected by the fingerprint. *)
  let fooled = ref 0 in
  for seed = 0 to 199 do
    let s = One_sparse.create (Prng.create seed) ~dim:100 in
    One_sparse.update s ~index:10 ~delta:1;
    One_sparse.update s ~index:30 ~delta:1;
    (* c0 = 2, c1 = 40 => candidate index 20, which is in range *)
    match One_sparse.decode s with One _ -> incr fooled | Zero | Many -> ()
  done;
  check_int "fingerprint never fooled" 0 !fooled

let prop_one_sparse_roundtrip =
  QCheck.Test.make ~name:"one_sparse insert+cancel leaves the survivor" ~count:200
    QCheck.(pair small_nat (small_list (pair (int_bound 99) (int_range 1 5))))
    (fun (seed, noise) ->
      let s = One_sparse.create (Prng.create seed) ~dim:200 in
      (* survivor at an index disjoint from the noise *)
      One_sparse.update s ~index:150 ~delta:9;
      List.iter (fun (i, w) -> One_sparse.update s ~index:i ~delta:w) noise;
      List.iter (fun (i, w) -> One_sparse.update s ~index:i ~delta:(-w)) noise;
      One_sparse.decode s = One (150, 9))

(* -------------------- Sparse_recovery -------------------- *)

let test_sr_empty () =
  let prm = Sparse_recovery.default_params ~sparsity:4 in
  let s = Sparse_recovery.create (Prng.create 1) ~dim:1000 ~params:prm in
  check_bool "zero" true (Sparse_recovery.is_zero s);
  match Sparse_recovery.decode s with
  | Some [] -> ()
  | Some _ | None -> Alcotest.fail "expected empty decode"

let test_sr_exact_recovery () =
  let rng = Prng.create 7 in
  let prm = Sparse_recovery.default_params ~sparsity:8 in
  for trial = 0 to 49 do
    let s = Sparse_recovery.create (Prng.create (1000 + trial)) ~dim:100000 ~params:prm in
    let vec = random_sparse_vec rng ~dim:100000 ~support:8 in
    apply_vec (Sparse_recovery.update s) vec;
    match Sparse_recovery.decode s with
    | Some assoc ->
        Alcotest.(check (list (pair int int)))
          "recovered exactly" (sort_vec vec) (sort_vec assoc)
    | None -> Alcotest.failf "decode failed on trial %d" trial
  done

let test_sr_overload_detected () =
  let rng = Prng.create 11 in
  let prm = Sparse_recovery.default_params ~sparsity:4 in
  (* With support far above budget, decode must either fail or be correct —
     never silently wrong. *)
  for trial = 0 to 19 do
    let s = Sparse_recovery.create (Prng.create (2000 + trial)) ~dim:5000 ~params:prm in
    let vec = random_sparse_vec rng ~dim:5000 ~support:100 in
    apply_vec (Sparse_recovery.update s) vec;
    match Sparse_recovery.decode s with
    | None -> ()
    | Some assoc ->
        Alcotest.(check (list (pair int int)))
          "if it decodes, it is right" (sort_vec vec) (sort_vec assoc)
  done

let test_sr_decode_any () =
  let prm = Sparse_recovery.default_params ~sparsity:4 in
  let s = Sparse_recovery.create (Prng.create 3) ~dim:1000 ~params:prm in
  Sparse_recovery.update s ~index:123 ~delta:4;
  Sparse_recovery.update s ~index:456 ~delta:2;
  (match Sparse_recovery.decode_any s with
  | Some (i, w) ->
      check_bool "member of support" true ((i, w) = (123, 4) || (i, w) = (456, 2))
  | None -> Alcotest.fail "decode_any failed on 2-sparse");
  check_bool "decode_any empty" true
    (Sparse_recovery.decode_any
       (Sparse_recovery.create (Prng.create 4) ~dim:10 ~params:prm)
    = None)

let test_sr_linearity () =
  let prm = Sparse_recovery.default_params ~sparsity:6 in
  let mk seed = Sparse_recovery.create (Prng.create seed) ~dim:10000 ~params:prm in
  let a = mk 5 and b = mk 5 in
  Sparse_recovery.update a ~index:10 ~delta:1;
  Sparse_recovery.update a ~index:20 ~delta:2;
  Sparse_recovery.update b ~index:20 ~delta:(-2);
  Sparse_recovery.update b ~index:30 ~delta:3;
  let m = Sparse_recovery.merge_many [ a; b ] in
  match Sparse_recovery.decode m with
  | Some assoc ->
      Alcotest.(check (list (pair int int)))
        "sum of vectors" [ (10, 1); (30, 3) ] (sort_vec assoc)
  | None -> Alcotest.fail "merged decode failed"

let test_sr_subtraction_reveals () =
  (* The key trick of Algorithm 3: sketch G, subtract an explicit edge set,
     decode the difference. *)
  let prm = Sparse_recovery.default_params ~sparsity:4 in
  let a = Sparse_recovery.create (Prng.create 6) ~dim:1000 ~params:prm in
  let b = Sparse_recovery.create (Prng.create 6) ~dim:1000 ~params:prm in
  for i = 0 to 99 do
    Sparse_recovery.update a ~index:i ~delta:1
  done;
  for i = 0 to 99 do
    if i <> 50 then Sparse_recovery.update b ~index:i ~delta:1
  done;
  Sparse_recovery.sub a b;
  match Sparse_recovery.decode a with
  | Some [ (50, 1) ] -> ()
  | Some _ | None -> Alcotest.fail "difference not recovered"

let prop_sr_within_budget =
  QCheck.Test.make ~name:"sparse_recovery recovers any vector within budget" ~count:100
    QCheck.(pair small_nat (int_range 0 8))
    (fun (seed, support) ->
      let rng = Prng.create (seed * 31) in
      let prm = Sparse_recovery.default_params ~sparsity:8 in
      let s = Sparse_recovery.create (Prng.create (seed + 777)) ~dim:4000 ~params:prm in
      let vec = random_sparse_vec rng ~dim:4000 ~support in
      apply_vec (Sparse_recovery.update s) vec;
      match Sparse_recovery.decode s with
      | Some assoc -> sort_vec assoc = sort_vec vec
      | None -> false)

let prop_sr_reset =
  QCheck.Test.make ~name:"reset returns to zero" ~count:50
    QCheck.(small_nat)
    (fun seed ->
      let prm = Sparse_recovery.default_params ~sparsity:4 in
      let s = Sparse_recovery.create (Prng.create seed) ~dim:500 ~params:prm in
      Sparse_recovery.update s ~index:(seed mod 500) ~delta:2;
      Sparse_recovery.reset s;
      Sparse_recovery.is_zero s)

(* -------------------- F0 -------------------- *)

let test_f0_exact_small () =
  let prm = F0.default_params in
  let s = F0.create (Prng.create 8) ~dim:10000 ~params:prm in
  check_int "empty" 0 (F0.estimate s);
  for i = 0 to 4 do
    F0.update s ~index:(i * 17) ~delta:1
  done;
  check_int "small support exact" 5 (F0.estimate s)

let test_f0_deletions () =
  let prm = F0.default_params in
  let s = F0.create (Prng.create 9) ~dim:10000 ~params:prm in
  for i = 0 to 99 do
    F0.update s ~index:i ~delta:1
  done;
  for i = 0 to 97 do
    F0.update s ~index:i ~delta:(-1)
  done;
  check_int "post-deletion support" 2 (F0.estimate s)

let test_f0_constant_factor () =
  let fails = ref 0 in
  for trial = 0 to 9 do
    let s = F0.create (Prng.create (300 + trial)) ~dim:100000 ~params:F0.default_params in
    for i = 0 to 999 do
      F0.update s ~index:(i * 97) ~delta:1
    done;
    let e = float_of_int (F0.estimate s) in
    if e < 1000.0 /. 3.0 || e > 3.0 *. 1000.0 then incr fails
  done;
  check_bool "factor-3 accuracy in >= 9/10 trials" true (!fails <= 1)

let test_f0_linearity () =
  let a = F0.create (Prng.create 10) ~dim:1000 ~params:F0.default_params in
  let b = F0.create (Prng.create 10) ~dim:1000 ~params:F0.default_params in
  F0.update a ~index:5 ~delta:1;
  F0.update b ~index:5 ~delta:(-1);
  F0.update b ~index:6 ~delta:1;
  F0.add a b;
  check_int "merged estimate" 1 (F0.estimate a)

(* -------------------- L0_sampler -------------------- *)

let test_l0_empty () =
  let s = L0_sampler.create (Prng.create 1) ~dim:100 ~params:L0_sampler.default_params in
  check_bool "empty sample" true (L0_sampler.sample s = None)

let test_l0_single () =
  let s = L0_sampler.create (Prng.create 2) ~dim:100 ~params:L0_sampler.default_params in
  L0_sampler.update s ~index:33 ~delta:2;
  match L0_sampler.sample s with
  | Some (33, 2) -> ()
  | Some _ | None -> Alcotest.fail "expected the unique element"

let test_l0_membership () =
  let rng = Prng.create 12 in
  let successes = ref 0 and wrong = ref 0 in
  let trials = 60 in
  for trial = 0 to trials - 1 do
    let s =
      L0_sampler.create (Prng.create (500 + trial)) ~dim:5000 ~params:L0_sampler.default_params
    in
    let vec = random_sparse_vec rng ~dim:5000 ~support:200 in
    apply_vec (L0_sampler.update s) vec;
    match L0_sampler.sample s with
    | Some (i, w) -> if List.mem (i, w) vec then incr successes else incr wrong
    | None -> ()
  done;
  check_int "never returns a non-member" 0 !wrong;
  check_bool "succeeds in most trials" true (!successes >= trials * 8 / 10)

let test_l0_deletion_to_empty () =
  let s = L0_sampler.create (Prng.create 13) ~dim:1000 ~params:L0_sampler.default_params in
  for i = 0 to 49 do
    L0_sampler.update s ~index:i ~delta:1
  done;
  for i = 0 to 49 do
    L0_sampler.update s ~index:i ~delta:(-1)
  done;
  check_bool "empty after full deletion" true (L0_sampler.sample s = None)

let test_l0_uniformity () =
  (* TV distance of the sampling distribution from uniform over a 16-element
     support, across fresh samplers. *)
  let support = Array.init 16 (fun i -> (i * 61) + 7) in
  let counts = Array.make 16 0 in
  let trials = 800 in
  for trial = 0 to trials - 1 do
    let s =
      L0_sampler.create (Prng.create (9000 + trial)) ~dim:1000
        ~params:L0_sampler.default_params
    in
    Array.iter (fun i -> L0_sampler.update s ~index:i ~delta:1) support;
    match L0_sampler.sample s with
    | Some (i, _) ->
        Array.iteri (fun j v -> if v = i then counts.(j) <- counts.(j) + 1) support
    | None -> ()
  done;
  let empirical = Array.map float_of_int counts in
  let uniform = Array.make 16 1.0 in
  let tv = Stats.total_variation empirical uniform in
  check_bool "TV from uniform < 0.15" true (tv < 0.15)

let test_l0_linearity () =
  let a = L0_sampler.create (Prng.create 14) ~dim:100 ~params:L0_sampler.default_params in
  let b = L0_sampler.create (Prng.create 14) ~dim:100 ~params:L0_sampler.default_params in
  L0_sampler.update a ~index:1 ~delta:1;
  L0_sampler.update b ~index:1 ~delta:(-1);
  L0_sampler.update b ~index:2 ~delta:1;
  L0_sampler.add a b;
  match L0_sampler.sample a with
  | Some (2, 1) -> ()
  | Some _ | None -> Alcotest.fail "merge should cancel index 1 and keep index 2"

(* -------------------- Count_sketch -------------------- *)

let test_count_sketch_pointwise () =
  let prm = { Count_sketch.rows = 5; cols = 512; hash_degree = 6 } in
  let s = Count_sketch.create (Prng.create 15) ~dim:10000 ~params:prm in
  Count_sketch.update s ~index:77 ~delta:1000;
  for i = 0 to 199 do
    Count_sketch.update s ~index:(100 + i) ~delta:1
  done;
  let e = Count_sketch.estimate s 77 in
  check_bool "heavy coordinate estimated well" true (abs (e - 1000) <= 30)

let test_count_sketch_heavy_hitters () =
  let prm = { Count_sketch.rows = 5; cols = 512; hash_degree = 6 } in
  let s = Count_sketch.create (Prng.create 16) ~dim:10000 ~params:prm in
  Count_sketch.update s ~index:7 ~delta:500;
  Count_sketch.update s ~index:9 ~delta:400;
  Count_sketch.update s ~index:11 ~delta:1;
  let candidates = [ 7; 9; 11; 13 ] in
  let hh = Count_sketch.heavy_hitters s ~candidates ~threshold:100 in
  let keys = List.map fst hh |> List.sort compare in
  Alcotest.(check (list int)) "finds exactly the heavy ones" [ 7; 9 ] keys

(* -------------------- Packed_l0 -------------------- *)

let test_packed_l0_single () =
  let cfg =
    Packed_l0.make_config (Prng.create 17) ~dim:64 ~params:Packed_l0.default_params
  in
  let st = Words.create (Packed_l0.state_len cfg) in
  Packed_l0.update cfg st ~off:0 ~index:9 ~delta:4;
  (match Packed_l0.decode cfg st ~off:0 with
  | Some (9, 4) -> ()
  | Some _ | None -> Alcotest.fail "expected unique element");
  Packed_l0.update cfg st ~off:0 ~index:9 ~delta:(-4);
  check_bool "empty after deletion" true (Packed_l0.decode cfg st ~off:0 = None)

let test_packed_l0_offset () =
  let cfg =
    Packed_l0.make_config (Prng.create 18) ~dim:64 ~params:Packed_l0.default_params
  in
  let len = Packed_l0.state_len cfg in
  let st = Words.create (3 * len) in
  Packed_l0.update cfg st ~off:len ~index:5 ~delta:1;
  check_bool "slot 0 untouched" true (Packed_l0.decode cfg st ~off:0 = None);
  check_bool "slot 2 untouched" true (Packed_l0.decode cfg st ~off:(2 * len) = None);
  match Packed_l0.decode cfg st ~off:len with
  | Some (5, 1) -> ()
  | Some _ | None -> Alcotest.fail "expected element in slot 1"

let test_packed_l0_success_rate () =
  let trials = 300 and failures = ref 0 and wrong = ref 0 in
  let rng = Prng.create 19 in
  for trial = 0 to trials - 1 do
    let cfg =
      Packed_l0.make_config
        (Prng.create (40000 + trial))
        ~dim:256 ~params:Packed_l0.default_params
    in
    let st = Words.create (Packed_l0.state_len cfg) in
    let support = 1 + Prng.int rng 40 in
    let vec = random_sparse_vec rng ~dim:256 ~support in
    List.iter (fun (i, w) -> Packed_l0.update cfg st ~off:0 ~index:i ~delta:w) vec;
    match Packed_l0.decode cfg st ~off:0 with
    | Some (i, w) -> if not (List.mem (i, w) vec) then incr wrong
    | None -> incr failures
  done;
  check_int "never wrong" 0 !wrong;
  check_bool "failure rate < 2%" true (float_of_int !failures /. float_of_int trials < 0.02)

let test_packed_l0_raw_linearity () =
  (* The property Sketch_table relies on: states add componentwise. *)
  let cfg =
    Packed_l0.make_config (Prng.create 20) ~dim:128 ~params:Packed_l0.default_params
  in
  let len = Packed_l0.state_len cfg in
  let a = Words.create len and b = Words.create len in
  Packed_l0.update cfg a ~off:0 ~index:3 ~delta:1;
  Packed_l0.update cfg b ~off:0 ~index:3 ~delta:(-1);
  Packed_l0.update cfg b ~off:0 ~index:8 ~delta:2;
  let sum = Words.copy a in
  Words.add sum b;
  match Packed_l0.decode cfg sum ~off:0 with
  | Some (8, 2) -> ()
  | Some _ | None -> Alcotest.fail "componentwise sum should decode the difference"

(* -------------------- Sketch_table -------------------- *)

let payload_cfg seed =
  Packed_l0.make_config (Prng.create seed) ~dim:64 ~params:Packed_l0.default_params

let test_table_roundtrip () =
  let cfg = payload_cfg 100 in
  let plen = Packed_l0.state_len cfg in
  let t =
    Sketch_table.create (Prng.create 101) ~key_dim:1000 ~capacity:64 ~rows:3 ~hash_degree:6
      ~payload_len:plen
  in
  (* 20 keys, each with one payload element = its neighbour. *)
  for k = 0 to 19 do
    let key = k * 37 in
    Sketch_table.update t ~key ~weight:1 ~write:(fun arr off ->
        Packed_l0.update cfg arr ~off ~index:(k mod 64) ~delta:1)
  done;
  match Sketch_table.decode t with
  | None -> Alcotest.fail "table decode failed"
  | Some entries ->
      check_int "all keys recovered" 20 (List.length entries);
      List.iter
        (fun (key, w, payload) ->
          let k = key / 37 in
          check_int "weight" 1 w;
          match Packed_l0.decode cfg payload ~off:0 with
          | Some (i, 1) -> check_int "payload element" (k mod 64) i
          | Some _ | None -> Alcotest.fail "payload decode failed")
        entries

let test_table_deletions () =
  let cfg = payload_cfg 102 in
  let plen = Packed_l0.state_len cfg in
  let t =
    Sketch_table.create (Prng.create 103) ~key_dim:100 ~capacity:16 ~rows:3 ~hash_degree:6
      ~payload_len:plen
  in
  let upd key index delta =
    Sketch_table.update t ~key ~weight:delta ~write:(fun arr off ->
        Packed_l0.update cfg arr ~off ~index ~delta)
  in
  upd 5 1 1;
  upd 7 2 1;
  upd 5 1 (-1);
  (* key 5 fully deleted *)
  match Sketch_table.decode t with
  | Some [ (7, 1, payload) ] -> (
      match Packed_l0.decode cfg payload ~off:0 with
      | Some (2, 1) -> ()
      | Some _ | None -> Alcotest.fail "payload of surviving key wrong")
  | Some _ | None -> Alcotest.fail "expected exactly the surviving key"

let test_table_over_capacity_detected () =
  let cfg = payload_cfg 104 in
  let plen = Packed_l0.state_len cfg in
  let wrongs = ref 0 in
  for trial = 0 to 9 do
    let t =
      Sketch_table.create
        (Prng.create (200 + trial))
        ~key_dim:4000 ~capacity:8 ~rows:3 ~hash_degree:6 ~payload_len:plen
    in
    for k = 0 to 299 do
      Sketch_table.update t ~key:(k * 13) ~weight:1 ~write:(fun arr off ->
          Packed_l0.update cfg arr ~off ~index:0 ~delta:1)
    done;
    match Sketch_table.decode t with
    | None -> ()
    | Some entries -> if List.length entries <> 300 then incr wrongs
  done;
  check_int "overload never silently wrong" 0 !wrongs

let test_table_merge () =
  let cfg = payload_cfg 105 in
  let plen = Packed_l0.state_len cfg in
  let mk () =
    Sketch_table.create (Prng.create 106) ~key_dim:100 ~capacity:16 ~rows:3 ~hash_degree:6
      ~payload_len:plen
  in
  let a = mk () and b = mk () in
  Sketch_table.update a ~key:1 ~weight:1 ~write:(fun arr off ->
      Packed_l0.update cfg arr ~off ~index:10 ~delta:1);
  Sketch_table.update b ~key:2 ~weight:1 ~write:(fun arr off ->
      Packed_l0.update cfg arr ~off ~index:20 ~delta:1);
  Sketch_table.add a b;
  match Sketch_table.decode a with
  | Some entries -> check_int "two keys after merge" 2 (List.length entries)
  | None -> Alcotest.fail "merged table decode failed"

let test_table_capacity_stress () =
  (* Fill to ~60% of capacity many times; decode must always succeed. *)
  let failures = ref 0 in
  for trial = 0 to 19 do
    let t =
      Sketch_table.create
        (Prng.create (300 + trial))
        ~key_dim:10000 ~capacity:64 ~rows:3 ~hash_degree:6 ~payload_len:1
    in
    for k = 0 to 37 do
      Sketch_table.update t ~key:((k * 241) mod 10000) ~weight:1 ~write:(fun arr off ->
          Words.set arr off (Words.get arr off + 1))
    done;
    match Sketch_table.decode t with
    | Some entries when List.length entries = 38 -> ()
    | Some _ | None -> incr failures
  done;
  check_int "no failures at 60% load" 0 !failures

(* -------------------- Ams_f2 -------------------- *)

let test_ams_exact_shape () =
  let s = Ams_f2.create (Prng.create 200) ~dim:1000 ~params:Ams_f2.default_params in
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Ams_f2.estimate s);
  Ams_f2.update s ~index:5 ~delta:3;
  (* A single coordinate is estimated exactly: every estimator is (+-3)^2. *)
  Alcotest.(check (float 1e-9)) "single coordinate" 9.0 (Ams_f2.estimate s);
  Ams_f2.update s ~index:5 ~delta:(-3);
  Alcotest.(check (float 1e-9)) "cancelled" 0.0 (Ams_f2.estimate s)

let test_ams_accuracy () =
  let trials = 20 in
  let ok = ref 0 in
  for t = 0 to trials - 1 do
    let s = Ams_f2.create (Prng.create (300 + t)) ~dim:5000 ~params:Ams_f2.default_params in
    let rng = Prng.create (400 + t) in
    let truth = ref 0.0 in
    for _ = 1 to 300 do
      let i = Prng.int rng 5000 and w = 1 + Prng.int rng 4 in
      Ams_f2.update s ~index:i ~delta:w;
      ignore w
    done;
    (* Recompute truth exactly from an explicit vector. *)
    let v = Array.make 5000 0 in
    let rng2 = Prng.create (400 + t) in
    for _ = 1 to 300 do
      let i = Prng.int rng2 5000 and w = 1 + Prng.int rng2 4 in
      v.(i) <- v.(i) + w
    done;
    Array.iter (fun x -> truth := !truth +. float_of_int (x * x)) v;
    let e = Ams_f2.estimate s in
    if e >= 0.5 *. !truth && e <= 1.5 *. !truth then incr ok
  done;
  check_bool "within 50% in >= 18/20 trials" true (!ok >= 18)

let test_ams_linearity () =
  let mk () = Ams_f2.create (Prng.create 500) ~dim:100 ~params:Ams_f2.default_params in
  let a = mk () and b = mk () in
  Ams_f2.update a ~index:1 ~delta:2;
  Ams_f2.update b ~index:1 ~delta:(-2);
  Ams_f2.update b ~index:2 ~delta:5;
  Ams_f2.add a b;
  Alcotest.(check (float 1e-9)) "merged" 25.0 (Ams_f2.estimate a)

(* -------------------- Misra-Gries (insert-only contrast) ------------- *)

let test_mg_heavy_hitter () =
  let t = Misra_gries.create ~k:4 in
  (* 60% of the stream is element 7. *)
  for i = 0 to 99 do
    Misra_gries.update t (if i mod 5 < 3 then 7 else i)
  done;
  let est = Misra_gries.estimate t 7 in
  check_bool "heavy hitter tracked" true (est > 0);
  (* Undershoot bounded by m/(k+1) = 20. *)
  check_bool "estimate within bound" true (60 - est <= 20);
  check_int "total" 100 (Misra_gries.total t)

let test_mg_no_false_heavies () =
  (* A uniform stream has no element above m/(k+1); estimates stay small. *)
  let t = Misra_gries.create ~k:4 in
  for i = 0 to 199 do
    Misra_gries.update t (i mod 50)
  done;
  List.iter
    (fun (_, c) -> check_bool "no inflated counter" true (c <= 4 + (200 / 5)))
    (Misra_gries.candidates t);
  check_bool "few candidates" true (List.length (Misra_gries.candidates t) <= 4)

let test_mg_cannot_handle_deletions () =
  (* The documented contrast: after insert+delete churn the linear
     CountSketch recovers ground truth, Misra-Gries (fed only inserts,
     deletions being inexpressible) reports the churn instead. *)
  let cs =
    Count_sketch.create (Prng.create 700) ~dim:1000
      ~params:{ Count_sketch.rows = 5; cols = 256; hash_degree = 6 }
  in
  let mg = Misra_gries.create ~k:2 in
  (* churn: element 3 inserted 50x then fully deleted; element 9 stays at 5. *)
  for _ = 1 to 50 do
    Count_sketch.update cs ~index:3 ~delta:1;
    Misra_gries.update mg 3
  done;
  for _ = 1 to 50 do
    Count_sketch.update cs ~index:3 ~delta:(-1) (* MG has no way to express this *)
  done;
  for _ = 1 to 5 do
    Count_sketch.update cs ~index:9 ~delta:1;
    Misra_gries.update mg 9
  done;
  check_bool "linear sketch forgets deleted" true (abs (Count_sketch.estimate cs 3) <= 2);
  check_bool "linear sketch keeps survivor" true (abs (Count_sketch.estimate cs 9 - 5) <= 2);
  check_bool "insert-only summary stuck with ghost" true (Misra_gries.estimate mg 3 > 20)

(* -------------------- Wire serialisation -------------------- *)

let test_wire_sparse_recovery () =
  let prm = Sparse_recovery.default_params ~sparsity:6 in
  let mk () = Sparse_recovery.create (Prng.create 600) ~dim:10000 ~params:prm in
  let a = mk () in
  Sparse_recovery.update a ~index:17 ~delta:3;
  Sparse_recovery.update a ~index:4242 ~delta:(-2);
  let sink = Ds_util.Wire.sink () in
  Sparse_recovery.write a sink;
  let bytes = Ds_util.Wire.contents sink in
  (* Mostly-zero sketches serialise small: well under a byte per word. *)
  check_bool "compact" true (String.length bytes < Sparse_recovery.space_in_words a);
  let b = mk () in
  Sparse_recovery.update b ~index:999 ~delta:7 (* stale state must be overwritten *);
  Sparse_recovery.read_into b (Ds_util.Wire.source bytes);
  (match Sparse_recovery.decode b with
  | Some assoc ->
      Alcotest.(check (list (pair int int)))
        "decoded after wire" [ (17, 3); (4242, -2) ] (sort_vec assoc)
  | None -> Alcotest.fail "decode after wire failed");
  (* And the deserialised copy is still linear: subtracting a re-read copy
     of [a] empties it. *)
  Sparse_recovery.sub b a;
  check_bool "wire copy is exact" true (Sparse_recovery.is_zero b)

let test_wire_l0_roundtrip () =
  let mk () = L0_sampler.create (Prng.create 601) ~dim:500 ~params:L0_sampler.default_params in
  let a = mk () in
  L0_sampler.update a ~index:77 ~delta:2;
  let sink = Ds_util.Wire.sink () in
  L0_sampler.write a sink;
  let b = mk () in
  L0_sampler.read_into b (Ds_util.Wire.source (Ds_util.Wire.contents sink));
  match L0_sampler.sample b with
  | Some (77, 2) -> ()
  | Some _ | None -> Alcotest.fail "sample after wire roundtrip"

(* Model-based fuzz: a Sketch_table tracks a map (key -> weight) through a
   random mix of inserts and deletes; whenever the live-key count is within
   capacity, decode must reproduce the model exactly. *)
let prop_table_fuzz =
  QCheck.Test.make ~name:"sketch_table agrees with a model map under churn" ~count:60
    QCheck.(pair small_nat (small_list (pair (int_bound 199) bool)))
    (fun (seed, ops) ->
      let t =
        Sketch_table.create (Prng.create (seed + 4000)) ~key_dim:200 ~capacity:48 ~rows:3
          ~hash_degree:6 ~payload_len:1
      in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (key, insert) ->
          let current = match Hashtbl.find_opt model key with Some w -> w | None -> 0 in
          let delta = if insert || current = 0 then 1 else -1 in
          Sketch_table.update t ~key ~weight:delta ~write:(fun arr off ->
              Words.set arr off (Words.get arr off + delta));
          let now = current + delta in
          if now = 0 then Hashtbl.remove model key else Hashtbl.replace model key now)
        ops;
      if Hashtbl.length model > 32 then true (* beyond tested load *)
      else
        match Sketch_table.decode t with
        | None -> false
        | Some entries ->
            List.length entries = Hashtbl.length model
            && List.for_all
                 (fun (k, w, payload) ->
                   Hashtbl.find_opt model k = Some w && Words.get payload 0 = w)
                 entries)

(* L0 sampler fuzz: any sample must come from the model's live support. *)
let prop_l0_fuzz =
  QCheck.Test.make ~name:"l0 sample always in the live support" ~count:80
    QCheck.(pair small_nat (small_list (int_bound 99)))
    (fun (seed, keys) ->
      let s =
        L0_sampler.create (Prng.create (seed + 5000)) ~dim:100 ~params:L0_sampler.default_params
      in
      let model = Hashtbl.create 16 in
      List.iter
        (fun k ->
          let current = match Hashtbl.find_opt model k with Some w -> w | None -> 0 in
          (* alternate insert/delete per key *)
          let delta = if current > 0 then -1 else 1 in
          L0_sampler.update s ~index:k ~delta;
          let now = current + delta in
          if now = 0 then Hashtbl.remove model k else Hashtbl.replace model k now)
        keys;
      match L0_sampler.sample s with
      | None -> true
      | Some (i, w) -> Hashtbl.find_opt model i = Some w)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_one_sparse_roundtrip;
      prop_sr_within_budget;
      prop_sr_reset;
      prop_table_fuzz;
      prop_l0_fuzz;
    ]

let () =
  Alcotest.run "sketch"
    [
      ( "one_sparse",
        [
          Alcotest.test_case "zero" `Quick test_one_sparse_zero;
          Alcotest.test_case "single" `Quick test_one_sparse_single;
          Alcotest.test_case "index zero" `Quick test_one_sparse_index_zero;
          Alcotest.test_case "many" `Quick test_one_sparse_many;
          Alcotest.test_case "cancel to one" `Quick test_one_sparse_cancel_to_one;
          Alcotest.test_case "linearity" `Quick test_one_sparse_linearity;
          Alcotest.test_case "adversarial many" `Quick test_one_sparse_adversarial_many;
        ] );
      ( "sparse_recovery",
        [
          Alcotest.test_case "empty" `Quick test_sr_empty;
          Alcotest.test_case "exact recovery" `Quick test_sr_exact_recovery;
          Alcotest.test_case "overload detected" `Quick test_sr_overload_detected;
          Alcotest.test_case "decode_any" `Quick test_sr_decode_any;
          Alcotest.test_case "linearity" `Quick test_sr_linearity;
          Alcotest.test_case "subtraction reveals" `Quick test_sr_subtraction_reveals;
        ] );
      ( "f0",
        [
          Alcotest.test_case "exact small" `Quick test_f0_exact_small;
          Alcotest.test_case "deletions" `Quick test_f0_deletions;
          Alcotest.test_case "constant factor" `Quick test_f0_constant_factor;
          Alcotest.test_case "linearity" `Quick test_f0_linearity;
        ] );
      ( "l0_sampler",
        [
          Alcotest.test_case "empty" `Quick test_l0_empty;
          Alcotest.test_case "single" `Quick test_l0_single;
          Alcotest.test_case "membership" `Quick test_l0_membership;
          Alcotest.test_case "deletion to empty" `Quick test_l0_deletion_to_empty;
          Alcotest.test_case "uniformity" `Slow test_l0_uniformity;
          Alcotest.test_case "linearity" `Quick test_l0_linearity;
        ] );
      ( "count_sketch",
        [
          Alcotest.test_case "pointwise" `Quick test_count_sketch_pointwise;
          Alcotest.test_case "heavy hitters" `Quick test_count_sketch_heavy_hitters;
        ] );
      ( "packed_l0",
        [
          Alcotest.test_case "single" `Quick test_packed_l0_single;
          Alcotest.test_case "offset" `Quick test_packed_l0_offset;
          Alcotest.test_case "success rate" `Slow test_packed_l0_success_rate;
          Alcotest.test_case "raw linearity" `Quick test_packed_l0_raw_linearity;
        ] );
      ( "misra_gries",
        [
          Alcotest.test_case "heavy hitter" `Quick test_mg_heavy_hitter;
          Alcotest.test_case "no false heavies" `Quick test_mg_no_false_heavies;
          Alcotest.test_case "deletion contrast" `Quick test_mg_cannot_handle_deletions;
        ] );
      ( "wire",
        [
          Alcotest.test_case "sparse recovery roundtrip" `Quick test_wire_sparse_recovery;
          Alcotest.test_case "l0 roundtrip" `Quick test_wire_l0_roundtrip;
        ] );
      ( "ams_f2",
        [
          Alcotest.test_case "exact shapes" `Quick test_ams_exact_shape;
          Alcotest.test_case "accuracy" `Quick test_ams_accuracy;
          Alcotest.test_case "linearity" `Quick test_ams_linearity;
        ] );
      ( "sketch_table",
        [
          Alcotest.test_case "roundtrip" `Quick test_table_roundtrip;
          Alcotest.test_case "deletions" `Quick test_table_deletions;
          Alcotest.test_case "over capacity detected" `Quick test_table_over_capacity_detected;
          Alcotest.test_case "merge" `Quick test_table_merge;
          Alcotest.test_case "capacity stress" `Quick test_table_capacity_stress;
        ] );
      ("properties", qcheck_cases);
    ]
