open Ds_util
open Ds_graph
open Ds_linalg
open Ds_stream
open Ds_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Small, fast parameters for tests; the bench sweeps real budgets. With
   J = 3 repetitions the far-vote needs lambda > 1/3 so that one unlucky
   repetition cannot push q_hat down a level. *)
let fast_params ~n =
  let base = Sparsify.default_params ~k:2 ~eps:0.5 ~n in
  {
    base with
    Sparsify.z_rounds = 8;
    oversample_shift = 3;
    estimate = { base.Sparsify.estimate with Estimate.j_reps = 3; t_levels = 10; lambda = 0.34 };
  }

(* -------------------- Estimate -------------------- *)

let test_estimate_orders_resistances () =
  (* On a lollipop, the path edges have resistance ~1 and the clique edges
     ~2/m: the oracle must give path edges a denser (smaller) level. *)
  let g = Gen.lollipop 12 10 in
  let n = Graph.n g in
  let stream = Stream_gen.insert_only (Prng.create 1) g in
  let prm = (fast_params ~n).Sparsify.estimate in
  let est = Estimate.build (Prng.create 2) ~n ~params:prm stream in
  let path_level = Estimate.query est 15 16 in
  let clique_level = Estimate.query est 0 1 in
  check_bool "bridge-ish edges denser" true (path_level < clique_level);
  check_bool "levels start at 1" true (path_level >= 1)

let test_estimate_correlates_with_resistance () =
  (* Lemma 19 ([KP12]): q_hat = Omega(R_e / alpha^2). Empirically the oracle
     levels should correlate with -log2(R_e): higher-resistance edges get
     denser (smaller) levels. Spearman-style check: mean level of the
     top-resistance tercile < mean level of the bottom tercile. *)
  let g = Gen.lollipop 14 12 in
  let n = Graph.n g in
  let wg = Weighted_graph.of_graph g in
  let stream = Stream_gen.insert_only (Prng.create 50) g in
  let prm = (fast_params ~n).Sparsify.estimate in
  let est = Estimate.build (Prng.create 51) ~n ~params:prm stream in
  let rows =
    List.map
      (fun (u, v, _, r) -> (r, float_of_int (Estimate.query est u v)))
      (Resistance.all_edges wg)
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare b a) rows in
  let k = List.length sorted / 3 in
  let take l n = List.filteri (fun i _ -> i < n) l in
  let top = take sorted k and bottom = take (List.rev sorted) k in
  let mean l = Stats.mean (Array.of_list (List.map snd l)) in
  check_bool
    (Printf.sprintf "high-R edges denser: %.2f < %.2f" (mean top) (mean bottom))
    true
    (mean top < mean bottom)

let test_estimate_exact_mode () =
  let g = Gen.lollipop 12 10 in
  let n = Graph.n g in
  let stream = Stream_gen.insert_only (Prng.create 3) g in
  let prm = { (fast_params ~n).Sparsify.estimate with Estimate.mode = Estimate.Exact_resistance } in
  let est = Estimate.build (Prng.create 4) ~n ~params:prm stream in
  (* Path edge: R = 1 -> q clamped to 1/2 -> level 1. *)
  check_int "path edge level" 1 (Estimate.query est 15 16);
  (* Clique edge: R ~ 2/12 -> level ~ round(log2(6)) = 3. *)
  let l = Estimate.query est 0 1 in
  check_bool "clique edge sparser" true (l >= 2 && l <= 5)

(* -------------------- Sample / Sparsify -------------------- *)

let pencil g h =
  Spectral.pencil_bounds ~base:(Weighted_graph.of_graph g) ~candidate:h

let test_sparsify_quality () =
  let n = 48 in
  let rng = Prng.create 5 in
  let g = Gen.connected_gnp rng ~n ~p:0.3 in
  let stream = Stream_gen.insert_only (Prng.split rng) g in
  let r = Sparsify.run (Prng.split rng) ~n ~params:(fast_params ~n) stream in
  let b = pencil g r.Sparsify.sparsifier in
  check_bool "no kernel leak" true (b.Spectral.kernel_leak < 1e-6);
  check_bool
    (Printf.sprintf "lambda_min %.3f reasonable" b.Spectral.lambda_min)
    true (b.Spectral.lambda_min > 0.2);
  check_bool
    (Printf.sprintf "lambda_max %.3f reasonable" b.Spectral.lambda_max)
    true (b.Spectral.lambda_max < 3.0)

let test_sparsify_under_churn () =
  let n = 40 in
  let rng = Prng.create 6 in
  let g = Gen.connected_gnp rng ~n ~p:0.3 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:200 g in
  let r = Sparsify.run (Prng.split rng) ~n ~params:(fast_params ~n) stream in
  let b = pencil g r.Sparsify.sparsifier in
  check_bool "connected approximation" true (b.Spectral.lambda_min > 0.1);
  check_bool "bounded above" true (b.Spectral.lambda_max < 4.0)

let test_sparsify_exact_oracle_ablation () =
  let n = 48 in
  let rng = Prng.create 7 in
  let g = Gen.connected_gnp rng ~n ~p:0.3 in
  let stream = Stream_gen.insert_only (Prng.split rng) g in
  let prm = fast_params ~n in
  let prm =
    { prm with Sparsify.estimate = { prm.Sparsify.estimate with Estimate.mode = Estimate.Exact_resistance } }
  in
  let r = Sparsify.run (Prng.split rng) ~n ~params:prm stream in
  let b = pencil g r.Sparsify.sparsifier in
  check_bool "exact oracle also works" true
    (b.Spectral.lambda_min > 0.2 && b.Spectral.lambda_max < 3.0)

let test_sparsify_preserves_bridge () =
  (* The bridge of a barbell has q_hat ~ 1: it must survive with weight ~1
     (its loss would send lambda_min to 0). *)
  let n = 24 in
  let g = Gen.barbell 12 in
  let stream = Stream_gen.insert_only (Prng.create 8) g in
  (* The bridge's q_hat level t* is ~log(1/lambda) above its resistance
     level (the alpha^2 slack of Lemma 19), so give this test the rounds
     that Lemma 22's Z = O(alpha^2 log n / eps^3) would: Z * 2^-level >> 1. *)
  let prm = { (fast_params ~n) with Sparsify.z_rounds = 16 } in
  let r = Sparsify.run (Prng.create 9) ~n ~params:prm stream in
  let b = pencil g r.Sparsify.sparsifier in
  check_bool "bridge preserved (lambda_min > 0)" true (b.Spectral.lambda_min > 0.2);
  check_bool "bridge edge present" true
    (Weighted_graph.mem_edge r.Sparsify.sparsifier 11 12)

let test_sample_spanner_semantics () =
  (* With q == j0 constant, Algorithm 5 must emit only weight 2^j0 edges,
     all of them real edges of the graph, and only edges that survived the
     level-j0 subsample (so substantially fewer than |E| for large j0). *)
  let n = 40 in
  let rng = Prng.create 60 in
  let g = Gen.connected_gnp rng ~n ~p:0.25 in
  let stream = Stream_gen.insert_only (Prng.split rng) g in
  let j0 = 3 in
  let r =
    Sample_spanner.run (Prng.split rng) ~n
      ~spanner_params:(Two_pass_spanner.default_params ~k:2)
      ~h_levels:8
      ~q:(fun _ _ -> j0)
      stream
  in
  check_bool "some edges emitted" true (List.length r.Sample_spanner.edges > 0);
  List.iter
    (fun (u, v, w) ->
      check_bool "real edge" true (Graph.mem_edge g u v);
      Alcotest.(check (float 1e-9)) "weight is 2^j0" (float_of_int (1 lsl j0)) w)
    r.Sample_spanner.edges;
  check_bool "subsampled (well below |E|)" true
    (List.length r.Sample_spanner.edges < Graph.num_edges g / 2);
  check_bool "space accounted" true (r.Sample_spanner.space_words > 0)

let test_sample_spanner_no_duplicates () =
  let n = 30 in
  let rng = Prng.create 61 in
  let g = Gen.connected_gnp rng ~n ~p:0.3 in
  let stream = Stream_gen.insert_only (Prng.split rng) g in
  let r =
    Sample_spanner.run (Prng.split rng) ~n
      ~spanner_params:(Two_pass_spanner.default_params ~k:2)
      ~h_levels:6
      ~q:(fun _ _ -> 2)
      stream
  in
  let keys = List.map (fun (u, v, _) -> (u, v)) r.Sample_spanner.edges in
  let sorted = List.sort_uniq compare keys in
  Alcotest.(check int) "no duplicate edges" (List.length keys) (List.length sorted)

let test_weighted_sparsify () =
  (* Weights in two well-separated classes; the weighted wrapper must land
     the pencil bounds inside the (1+gamma)(1+-eps) window. *)
  let n = 32 in
  let rng = Prng.create 30 in
  let g0 = Gen.connected_gnp rng ~n ~p:0.35 in
  let wg = Weighted_graph.create n in
  Graph.iter_edges g0 (fun u v ->
      Weighted_graph.add_edge wg u v (if (u + v) mod 2 = 0 then 1.0 else 8.0));
  let stream =
    Array.of_list
      (List.map
         (fun (u, v, w) -> { Update.wu = u; wv = v; weight = w; wsign = Update.Insert })
         (Weighted_graph.edges wg))
  in
  let gamma = 0.5 in
  let prm = { (fast_params ~n) with Sparsify.z_rounds = 12 } in
  let r = Weighted_sparsify.run (Prng.split rng) ~n ~params:prm ~gamma ~w_min:1.0 ~w_max:8.0 stream in
  check_bool "at least two classes" true (r.Weighted_sparsify.classes >= 2);
  let b = Spectral.pencil_bounds ~base:wg ~candidate:r.Weighted_sparsify.sparsifier in
  let lo, hi = Weighted_sparsify.quality_bound ~eps:0.8 ~gamma in
  check_bool
    (Printf.sprintf "weighted pencil [%.2f, %.2f] in [%.2f, %.2f]" b.Spectral.lambda_min
       b.Spectral.lambda_max lo hi)
    true
    (b.Spectral.lambda_min >= lo -. 1e-9 && b.Spectral.lambda_max <= hi +. 1e-9);
  check_bool "kernel clean" true (b.Spectral.kernel_leak < 1e-6)

(* -------------------- Uniform-sampling baseline -------------------- *)

let test_uniform_loses_bridges () =
  (* At rate p, the barbell bridge dies with probability 1 - p; resistance-
     aware sampling (SS08) keeps it always. *)
  let g = Weighted_graph.of_graph (Gen.barbell 12) in
  let p = 0.3 in
  let lost = ref 0 and trials = 40 in
  for t = 0 to trials - 1 do
    let h = Uniform_sparsifier.run (Prng.create (100 + t)) ~p g in
    if not (Weighted_graph.mem_edge h 11 12) then incr lost
  done;
  let frac = float_of_int !lost /. float_of_int trials in
  check_bool
    (Printf.sprintf "bridge lost ~(1-p) of the time (%.2f)" frac)
    true
    (abs_float (frac -. (1.0 -. p)) < 0.2);
  (* SS08 never loses it: p_e = min(1, C w R log n / eps^2) = 1 for R = 1. *)
  for t = 0 to 9 do
    let h = Ss_sparsifier.run (Prng.create (200 + t)) ~eps:0.5 ~oversample:1.0 g in
    check_bool "ss08 keeps the bridge" true (Weighted_graph.mem_edge h 11 12)
  done

let test_uniform_unbiased_on_expanders () =
  (* On a dense G(n,p) every cut is crossed by many edges, so uniform
     sampling is actually fine — the contrast that motivates importance
     sampling only on sparse cuts. *)
  let g = Weighted_graph.of_graph (Gen.connected_gnp (Prng.create 40) ~n:48 ~p:0.5) in
  let h = Uniform_sparsifier.run (Prng.create 41) ~p:0.5 g in
  let b = Spectral.pencil_bounds ~base:g ~candidate:h in
  check_bool
    (Printf.sprintf "dense graph ok [%.2f, %.2f]" b.Spectral.lambda_min b.Spectral.lambda_max)
    true
    (b.Spectral.lambda_min > 0.35 && b.Spectral.lambda_max < 1.65)

let test_uniform_matching_p () =
  let g = Weighted_graph.of_graph (Gen.complete 20) in
  Alcotest.(check (float 1e-9)) "rate" (50.0 /. 190.0)
    (Uniform_sparsifier.matching_p ~target_edges:50 g)

(* -------------------- SS08 baseline -------------------- *)

let test_ss08_quality () =
  let g = Weighted_graph.of_graph (Gen.connected_gnp (Prng.create 10) ~n:64 ~p:0.4) in
  let h = Ss_sparsifier.run (Prng.create 11) ~eps:0.5 g in
  let b = Spectral.pencil_bounds ~base:g ~candidate:h in
  check_bool "ss08 lambda_min" true (b.Spectral.lambda_min > 0.4);
  check_bool "ss08 lambda_max" true (b.Spectral.lambda_max < 1.7);
  check_bool "ss08 compresses" true
    (Weighted_graph.num_edges h < Weighted_graph.num_edges g)

let test_ss08_expected_size_formula () =
  let g = Weighted_graph.of_graph (Gen.complete 32) in
  let e = Ss_sparsifier.expected_size ~eps:0.5 g in
  (* sum_e p_e <= m, and for a clique with eps=0.5 it is far below m. *)
  check_bool "formula sane" true (e > 0.0 && e <= float_of_int (Weighted_graph.num_edges g))

(* -------------------- single-pass (KLMMS chain) -------------------- *)

module S1 = Ds_sparsify.Sparsify1p
module LB = Ds_sparsify.Level_bank

let weighted_of_multigraph g =
  let wg = Weighted_graph.create (Graph.n g) in
  Graph.iter_edges g (fun u v ->
      Weighted_graph.add_edge wg u v (float_of_int (Graph.multiplicity g u v)));
  wg

(* A multigraph stream with deletions and Zipf-profiled residual
   multiplicities: edge of rank r ends at multiplicity ~ 4 / (1 + r mod 7),
   and every edge is over-inserted once and deleted once on the way. *)
let zipf_multigraph_stream rng g =
  let first = ref [] and ins = ref [] and del = ref [] in
  List.iteri
    (fun i (u, v) ->
      let m = max 1 (4 / (1 + (i mod 7))) in
      first := Update.insert u v :: !first;
      for _ = 1 to m do
        ins := Update.insert u v :: !ins
      done;
      del := Update.delete u v :: !del)
    (Graph.edges g);
  let shuffle a =
    let a = Array.copy a in
    for i = Array.length a - 1 downto 1 do
      let j = Prng.int rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    a
  in
  (* One guaranteed insert per edge up front keeps every prefix valid; the
     remaining inserts and the deletions then interleave freely (an edge may
     drop to multiplicity 0 mid-stream and come back). *)
  Array.append
    (shuffle (Array.of_list !first))
    (Stream_gen.interleave rng (shuffle (Array.of_list !ins)) (shuffle (Array.of_list !del)))

let test_s1_eps_boundaries () =
  let rejects_two_pass eps =
    try
      ignore (Sparsify.default_params ~k:2 ~eps ~n:32);
      false
    with Sparsify.Invalid_eps e -> e = eps || (Float.is_nan e && Float.is_nan eps)
  in
  let rejects_one_pass eps =
    try
      ignore (S1.default_params ~n:32 ~eps);
      false
    with S1.Invalid_eps e -> e = eps || (Float.is_nan e && Float.is_nan eps)
  in
  List.iter
    (fun eps ->
      check_bool (Printf.sprintf "two-pass rejects %f" eps) true (rejects_two_pass eps);
      check_bool (Printf.sprintf "one-pass rejects %f" eps) true (rejects_one_pass eps))
    [ 0.0; 1.0; -0.25; 1.5; Float.nan ];
  (* The open interval's interior is accepted right up to the ends. *)
  List.iter
    (fun eps ->
      ignore (Sparsify.default_params ~k:2 ~eps ~n:32);
      ignore (S1.default_params ~n:32 ~eps))
    [ 0.001; 0.5; 0.999 ]

let test_s1_empty_stream () =
  let n = 16 in
  let r = S1.run (Prng.create 900) ~n ~params:(S1.default_params ~n ~eps:0.5) ~eps:0.5 [||] in
  check_int "empty stream -> empty sparsifier" 0
    (Weighted_graph.num_edges r.S1.sparsifier);
  check_bool "chain still ran" true (r.S1.chain_steps > 0)

let prop_s1_pencil =
  QCheck.Test.make
    ~name:"single-pass pencil bounds within (1 +- eps) on Zipf multigraphs with deletions"
    ~count:8 QCheck.small_nat
    (fun seed ->
      let n = 24 and eps = 0.5 in
      let rng = Prng.create (7000 + seed) in
      let g = Gen.connected_gnp (Prng.split rng) ~n ~p:0.25 in
      let stream = zipf_multigraph_stream (Prng.split rng) g in
      let base = weighted_of_multigraph (Update.final_graph ~n stream) in
      let r = S1.run (Prng.split rng) ~n ~params:(S1.default_params ~n ~eps) ~eps stream in
      let b = Spectral.pencil_bounds ~base ~candidate:r.S1.sparsifier in
      b.Spectral.lambda_min >= 1.0 -. eps
      && b.Spectral.lambda_max <= 1.0 +. eps
      && b.Spectral.kernel_leak < 1e-6)

let s1_test_bank seed =
  LB.create (Prng.create seed) ~dim:(Edge_index.dim 16)
    ~params:{ LB.banks = 2; levels = 6; rows = 3; cols = 32; hash_degree = 4 }

let s1_serialize t = Ds_sketch.Linear_sketch.serialize (module LB.Linear) t

let prop_s1_serialize_merge_commutes =
  QCheck.Test.make ~name:"level bank: serialize o merge = merge o serialize" ~count:20
    QCheck.small_nat
    (fun seed ->
      let rng = Prng.create (8000 + seed) in
      let dim = Edge_index.dim 16 in
      let stream () =
        Array.init 60 (fun _ -> (Prng.int rng dim, if Prng.bool rng then 1 else -1))
      in
      let a = s1_test_bank 33 and b = s1_test_bank 33 in
      Array.iter (fun (index, delta) -> LB.update a ~index ~delta) (stream ());
      Array.iter (fun (index, delta) -> LB.update b ~index ~delta) (stream ());
      (* Path 1: merge the live states, then serialize. *)
      let merged = LB.clone_zero a in
      LB.add merged a;
      LB.add merged b;
      let direct = s1_serialize merged in
      (* Path 2: serialize both, rehydrate into fresh states, merge those. *)
      let a' = LB.clone_zero a and b' = LB.clone_zero b in
      Ds_sketch.Linear_sketch.deserialize_into (module LB.Linear) a' (s1_serialize a);
      Ds_sketch.Linear_sketch.deserialize_into (module LB.Linear) b' (s1_serialize b);
      LB.add a' b';
      String.equal direct (s1_serialize a'))

let prop_s1_size_vs_two_pass =
  (* The measured-constant differential of E20: on the same stream the
     single-pass output may not exceed a small multiple of the two-pass
     output (both are (1 +- eps) sparsifiers; at this scale the chain's
     final step saturates, so the honest constant is its distance from the
     two-pass subsample). *)
  QCheck.Test.make ~name:"single-pass size within measured constant of two-pass" ~count:5
    QCheck.small_nat
    (fun seed ->
      let n = 32 and eps = 0.5 in
      let rng = Prng.create (9000 + seed) in
      let g = Gen.connected_gnp (Prng.split rng) ~n ~p:0.3 in
      let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:100 g in
      let one = S1.run (Prng.split rng) ~n ~params:(S1.default_params ~n ~eps) ~eps stream in
      let two = Sparsify.run (Prng.split rng) ~n ~params:(fast_params ~n) stream in
      let s1 = Weighted_graph.num_edges one.S1.sparsifier in
      let s2 = max 1 (Weighted_graph.num_edges two.Sparsify.sparsifier) in
      s1 <= 4 * s2 && float_of_int s1 <= S1.space_bound ~n ~eps)

let test_s1_state_roundtrip_decodes_identically () =
  (* The bank is the whole state: shipping it through LSK1 and decoding
     with the same seed must reproduce the sparsifier edge for edge. *)
  let n = 24 and eps = 0.5 in
  let rng = Prng.create 910 in
  let g = Gen.connected_gnp (Prng.split rng) ~n ~p:0.25 in
  let stream = Stream_gen.with_churn (Prng.split rng) ~decoys:80 g in
  let prm = S1.default_params ~n ~eps in
  let t = S1.create (Prng.create 911) ~n ~params:prm in
  Array.iter (fun u -> S1.update t ~u:u.Update.u ~v:u.Update.v ~delta:(Update.delta u)) stream;
  let copy = LB.clone_zero (S1.bank t) in
  Ds_sketch.Linear_sketch.deserialize_into
    (module LB.Linear)
    copy
    (Ds_sketch.Linear_sketch.serialize (module LB.Linear) (S1.bank t));
  let r1 = S1.decode (Prng.create 912) t ~eps in
  let r2 = S1.decode (Prng.create 912) (S1.of_bank ~n ~params:prm copy) ~eps in
  check_bool "identical edge sets" true
    (Weighted_graph.edges r1.S1.sparsifier = Weighted_graph.edges r2.S1.sparsifier)

let () =
  Alcotest.run "sparsifier"
    [
      ( "estimate",
        [
          Alcotest.test_case "orders resistances" `Slow test_estimate_orders_resistances;
          Alcotest.test_case "correlates with resistance" `Slow
            test_estimate_correlates_with_resistance;
          Alcotest.test_case "exact mode" `Quick test_estimate_exact_mode;
        ] );
      ( "sample_spanner",
        [
          Alcotest.test_case "semantics" `Quick test_sample_spanner_semantics;
          Alcotest.test_case "no duplicates" `Quick test_sample_spanner_no_duplicates;
        ] );
      ( "sparsify",
        [
          Alcotest.test_case "quality" `Slow test_sparsify_quality;
          Alcotest.test_case "under churn" `Slow test_sparsify_under_churn;
          Alcotest.test_case "exact oracle ablation" `Slow test_sparsify_exact_oracle_ablation;
          Alcotest.test_case "preserves bridge" `Slow test_sparsify_preserves_bridge;
          Alcotest.test_case "weighted wrapper" `Slow test_weighted_sparsify;
        ] );
      ( "uniform_baseline",
        [
          Alcotest.test_case "loses bridges" `Quick test_uniform_loses_bridges;
          Alcotest.test_case "fine on dense" `Quick test_uniform_unbiased_on_expanders;
          Alcotest.test_case "matching p" `Quick test_uniform_matching_p;
        ] );
      ( "ss08",
        [
          Alcotest.test_case "quality" `Quick test_ss08_quality;
          Alcotest.test_case "expected size" `Quick test_ss08_expected_size_formula;
        ] );
      ( "sparsify1p",
        [
          Alcotest.test_case "eps boundaries" `Quick test_s1_eps_boundaries;
          Alcotest.test_case "empty stream" `Quick test_s1_empty_stream;
          Alcotest.test_case "state roundtrip decodes identically" `Slow
            test_s1_state_roundtrip_decodes_identically;
          QCheck_alcotest.to_alcotest prop_s1_pencil;
          QCheck_alcotest.to_alcotest prop_s1_serialize_merge_commutes;
          QCheck_alcotest.to_alcotest prop_s1_size_vs_two_pass;
        ] );
    ]
