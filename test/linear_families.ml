(* The registry of every linear-sketch family, shared by the test suites
   (test_linear.ml) and the golden-fixture generator (golden_gen.ml).

   A maker called twice returns two structurally identical
   (wire-compatible) fresh sketches, because it reseeds from the same
   constant.  The existential [fam] keeps the concrete state type
   available so properties can exercise the typed [add]/[sub] kernels
   directly (including aliased calls like [add t t]), which the packed
   form cannot express. *)

open Ds_util
open Ds_sketch

type fam =
  | F : {
      name : string;
      make : unit -> 'a;
      impl : 'a Linear_sketch.impl;
    }
      -> fam

let name (F f) = f.name
let pack (F f) = Linear_sketch.Packed.pack f.impl (f.make ())

let agm_n = 16
let agm_params = Ds_agm.Agm_sketch.default_params ~n:agm_n

let all : fam list =
  [
    F
      {
        name = "one_sparse";
        make = (fun () -> One_sparse.create (Prng.create 101) ~dim:100);
        impl = (module One_sparse.Linear);
      };
    F
      {
        name = "sparse_recovery";
        make =
          (fun () ->
            Sparse_recovery.create (Prng.create 102) ~dim:100
              ~params:(Sparse_recovery.default_params ~sparsity:4));
        impl = (module Sparse_recovery.Linear);
      };
    F
      {
        name = "count_sketch";
        make =
          (fun () ->
            Count_sketch.create (Prng.create 103) ~dim:100
              ~params:{ Count_sketch.rows = 3; cols = 32; hash_degree = 4 });
        impl = (module Count_sketch.Linear);
      };
    F
      {
        name = "ams_f2";
        make =
          (fun () ->
            Ams_f2.create (Prng.create 104) ~dim:100
              ~params:{ Ams_f2.rows = 4; reps = 3; hash_degree = 4 });
        impl = (module Ams_f2.Linear);
      };
    F
      {
        name = "f0";
        make =
          (fun () ->
            F0.create (Prng.create 105) ~dim:100
              ~params:{ F0.sparsity = 4; reps = 2; hash_degree = 4 });
        impl = (module F0.Linear);
      };
    F
      {
        name = "l0_sampler";
        make =
          (fun () ->
            L0_sampler.create (Prng.create 106) ~dim:100 ~params:L0_sampler.default_params);
        impl = (module L0_sampler.Linear);
      };
    F
      {
        name = "packed_l0";
        make =
          (fun () ->
            Packed_l0.Owned.create (Prng.create 107) ~dim:100 ~params:Packed_l0.default_params);
        impl = (module Packed_l0.Linear);
      };
    F
      {
        name = "sketch_table";
        make =
          (fun () ->
            Sketch_table.create (Prng.create 108) ~key_dim:100 ~capacity:16 ~rows:3
              ~hash_degree:4 ~payload_len:0);
        impl = (module Sketch_table.Linear);
      };
    F
      {
        name = "agm";
        make = (fun () -> Ds_agm.Agm_sketch.create (Prng.create 109) ~n:agm_n ~params:agm_params);
        impl = (module Ds_agm.Agm_sketch.Linear);
      };
    F
      {
        name = "connectivity";
        make =
          (fun () -> Ds_agm.Connectivity.create (Prng.create 110) ~n:agm_n ~params:agm_params);
        impl = (module Ds_agm.Connectivity.Linear);
      };
    F
      {
        name = "k_connectivity";
        make =
          (fun () ->
            Ds_agm.K_connectivity.create (Prng.create 111) ~n:agm_n ~k:2 ~params:agm_params);
        impl = (module Ds_agm.K_connectivity.Linear);
      };
    F
      {
        name = "bipartiteness";
        make =
          (fun () -> Ds_agm.Bipartiteness.create (Prng.create 112) ~n:agm_n ~params:agm_params);
        impl = (module Ds_agm.Bipartiteness.Linear);
      };
    F
      {
        name = "mst";
        make =
          (fun () ->
            Ds_agm.Mst.create (Prng.create 113) ~n:agm_n
              ~params:
                { Ds_agm.Mst.gamma = 0.5; w_min = 1.0; w_max = 8.0; sketch = agm_params });
        impl = (module Ds_agm.Mst.Linear);
      };
    F
      {
        name = "sparsify1p";
        make =
          (fun () ->
            Ds_sparsify.Level_bank.create (Prng.create 115)
              ~dim:(Ds_graph.Edge_index.dim agm_n)
              ~params:
                {
                  Ds_sparsify.Level_bank.banks = 2;
                  levels = 6;
                  rows = 3;
                  cols = 32;
                  hash_degree = 4;
                });
        impl = (module Ds_sparsify.Level_bank.Linear);
      };
    F
      {
        name = "agm_copy";
        make =
          (fun () ->
            Ds_agm.Agm_sketch.Copy.slice
              (Ds_agm.Agm_sketch.create (Prng.create 114) ~n:agm_n ~params:agm_params)
              2);
        impl = (module Ds_agm.Agm_sketch.Copy.Linear);
      };
  ]

let find name' = List.find (fun f -> name f = name') all

(* A deterministic pseudo-random update vector over a [dim]-sized index
   space, parameterised by a seed.  The draw order (index then sign) is
   part of the golden-fixture contract: fixtures were generated from
   exactly this stream at the pre-Words commit. *)
let update_stream ?(count = 30) ~dim seed =
  let rng = Prng.create (0x5EED + seed) in
  Array.init count (fun _ -> (Prng.int rng dim, if Prng.bool rng then 2 else -1))

let apply_stream (type a) ((module L) : a Linear_sketch.impl) (t : a) updates =
  Array.iter (fun (index, delta) -> L.update t ~index ~delta) updates

(* The stream the committed golden envelopes under test/golden/ were
   produced from (seed 42, 40 updates over each family's own dim). *)
let golden_seed = 42
let golden_count = 40

let golden_bytes (F f) =
  let t = f.make () in
  let (module L) = f.impl in
  apply_stream f.impl t (update_stream ~count:golden_count ~dim:(L.dim t) golden_seed);
  Linear_sketch.serialize f.impl t
