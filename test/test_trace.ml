(* Causal-trace well-formedness: QCheck properties over span-forest
   reconstruction (acyclic, resolvable parents, unique ids — including
   under multi-domain recording through the pool) and over the LSK1
   trace-context extension (survives the faulted channel, duplicates and
   delays never collide span ids, extension-free envelopes still decode:
   wire-format backward compatibility in both directions). *)

open Ds_util
open Ds_sketch

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module T = Ds_obs.Trace
module TT = Ds_obs.Trace_tree
module LS = Linear_sketch
module P = LS.Packed
module FP = Ds_fault.Fault_plan

let with_obs f =
  Ds_obs.Export.enable ();
  Ds_obs.Export.reset ();
  Fun.protect
    ~finally:(fun () ->
      Ds_obs.Export.disable ();
      Ds_obs.Export.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Forest well-formedness                                              *)
(* ------------------------------------------------------------------ *)

(* Every reconstructed forest must be a forest: each node reachable from
   exactly one root, ids unique, every non-root's parent resolvable and
   in the same trace.  [spans] must be a complete recording (no ring
   drops), which the callers guarantee by sizing the ring. *)
let assert_well_formed spans =
  let forest = TT.of_spans spans in
  check_int "nothing dropped" 0 (T.dropped ());
  check_int "no orphans" 0 forest.TT.orphans;
  check_int "no cycles" 0 forest.TT.cycles_broken;
  let ids = Hashtbl.create 64 in
  List.iter
    (fun (sp : T.span) ->
      check_bool "span id never 0" true (sp.T.span_id <> 0L);
      check_bool "span ids unique" false (Hashtbl.mem ids sp.T.span_id);
      Hashtbl.replace ids sp.T.span_id ())
    spans;
  (* Acyclic + every node reachable exactly once from the roots. *)
  let visited = Hashtbl.create 64 in
  TT.iter_forest
    (fun n ->
      let id = n.TT.span.T.span_id in
      check_bool "each node visited once (acyclic)" false (Hashtbl.mem visited id);
      Hashtbl.replace visited id ();
      (match n.TT.parent with
      | Some p ->
          check_bool "parent pointer matches parent_id" true
            (p.TT.span.T.span_id = n.TT.span.T.parent_id);
          check_bool "child inherits trace id" true (p.TT.span.T.trace_id = n.TT.span.T.trace_id)
      | None -> ());
      List.iter
        (fun c ->
          check_bool "child points back" true
            (match c.TT.parent with Some p -> p == n | None -> false))
        n.TT.children)
    forest;
  check_int "every node reachable from a root" forest.TT.node_count (Hashtbl.length visited);
  forest

(* A deterministic nesting program driven by a seed: recursive spans with
   data-dependent depth/fanout, a batch of pool tasks recording on worker
   domains (parented under the submitting span via the carried context),
   and a few explicit [record]s. *)
let run_program seed =
  let rng = Prng.create (0x7ace + seed) in
  let rec nest depth =
    T.with_span (Printf.sprintf "n%d" depth) (fun () ->
        if depth > 0 then
          for _ = 1 to 1 + Prng.int rng 2 do
            nest (depth - 1)
          done
        else T.record "leaf" ~start_ns:(Int64.of_int (Prng.int rng 1000)) ~dur_ns:1L)
  in
  T.with_span "prog.root" (fun () ->
      nest (1 + Prng.int rng 3);
      Ds_par.Pool.with_pool ~domains:2 (fun pool ->
          ignore
            (Ds_par.Pool.run pool
               (List.init
                  (2 + Prng.int rng 4)
                  (fun i () -> T.with_span (Printf.sprintf "task%d" i) (fun () -> nest 1))))))

let prop_forest_well_formed =
  QCheck.Test.make ~name:"multi-domain span forest is acyclic with resolvable parents"
    ~count:30
    QCheck.(int_bound 10_000)
    (fun seed ->
      with_obs (fun () ->
          T.reset ~capacity:4096 ();
          run_program seed;
          let spans = T.spans () in
          let forest = assert_well_formed spans in
          (* The whole program ran under one root: a single trace id. *)
          let root_traces =
            List.sort_uniq Int64.compare (List.map (fun (sp : T.span) -> sp.T.trace_id) spans)
          in
          check_int "one trace id" 1 (List.length root_traces);
          check_int "one root" 1 (List.length forest.TT.roots);
          true))

let prop_jsonl_round_trip =
  QCheck.Test.make ~name:"JSONL round-trip preserves spans and structure" ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      with_obs (fun () ->
          T.reset ~capacity:4096 ();
          run_program seed;
          let spans = T.spans () in
          let parsed = TT.parse_jsonl (T.to_jsonl ()) in
          check_int "same span count" (List.length spans) (List.length parsed);
          List.iter2
            (fun (a : T.span) (b : T.span) ->
              check_bool "span survives JSONL" true
                (a.T.name = b.T.name && a.T.start_ns = b.T.start_ns && a.T.dur_ns = b.T.dur_ns
               && a.T.domain = b.T.domain && a.T.pid = b.T.pid && a.T.trace_id = b.T.trace_id
               && a.T.span_id = b.T.span_id && a.T.parent_id = b.T.parent_id))
            spans parsed;
          ignore (assert_well_formed parsed);
          true))

(* ------------------------------------------------------------------ *)
(* LSK1 trace-context extension under the faulted channel              *)
(* ------------------------------------------------------------------ *)

let fresh_sketch () =
  P.pack
    (module Count_sketch.Linear)
    (Count_sketch.create (Prng.create 7103) ~dim:100
       ~params:{ Count_sketch.rows = 3; cols = 32; hash_degree = 4 })

let loaded_sketch seed =
  let sk = fresh_sketch () in
  let rng = Prng.create (7200 + seed) in
  for _ = 1 to 50 do
    P.update sk ~index:(Prng.int rng 100) ~delta:(Prng.int rng 9 - 4)
  done;
  sk

(* Ship one traced envelope through every fault the plan draws on a small
   coordinate grid; decode whatever the channel delivers.  Returns how
   many decodes succeeded. *)
let fuzz_channel ~plan ~ctx ~envelope =
  let ok = ref 0 in
  let decode bytes =
    let dst = fresh_sketch () in
    match P.deserialize_result dst bytes with
    | Ok () ->
        check_bool "decoded bytes are the sent bytes" true (bytes = envelope);
        incr ok
    | Error _ -> check_bool "only damaged bytes fail to decode" true (bytes <> envelope)
  in
  for server = 0 to 3 do
    for attempt = 0 to 3 do
      let fault = FP.draw plan ~server ~message:0 ~attempt in
      let crng = FP.channel_rng plan ~server ~message:0 ~attempt in
      match FP.apply crng fault envelope with
      | FP.Delivered bytes -> decode bytes
      | FP.Duplicated bytes ->
          decode bytes;
          decode bytes
      | FP.Delayed (_, bytes) -> decode bytes
      | FP.Lost | FP.Crashed -> ()
    done
  done;
  ignore ctx;
  !ok

let prop_context_survives_faults =
  QCheck.Test.make ~name:"trace context survives LSK1 round-trip under fault fuzz" ~count:25
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (fun (seed, fault_seed) ->
      with_obs (fun () ->
          T.reset ~capacity:4096 ();
          let sk = loaded_sketch seed in
          let ctx = ref None in
          let envelope =
            T.with_span "fuzz.ship" (fun () ->
                ctx := T.current_context ();
                P.serialize ?trace:(T.current_context ()) sk)
          in
          let ctx = Option.get !ctx in
          let plan = FP.random ~seed:fault_seed ~rate:0.6 in
          let ok = fuzz_channel ~plan ~ctx ~envelope in
          (* Every successful decode recorded one linked span; duplicates
             and delays made extra decodes, never colliding ids. *)
          let decodes =
            List.filter (fun (sp : T.span) -> sp.T.name = "sketch.decode") (T.spans ())
          in
          check_int "one linked span per successful decode" ok (List.length decodes);
          let ids =
            List.sort_uniq Int64.compare (List.map (fun (s : T.span) -> s.T.span_id) decodes)
          in
          check_int "no colliding span ids across duplicates" ok (List.length ids);
          List.iter
            (fun (sp : T.span) ->
              check_bool "decode parents under the shipping span" true
                (sp.T.parent_id = ctx.T.span_id);
              check_bool "decode joins the shipping trace" true
                (sp.T.trace_id = ctx.T.trace_id))
            decodes;
          ignore (assert_well_formed (T.spans ()));
          true))

let prop_wire_backward_compatible =
  QCheck.Test.make ~name:"envelopes without the extension still decode (both directions)"
    ~count:25
    QCheck.(int_bound 10_000)
    (fun seed ->
      let sk = loaded_sketch seed in
      let plain = P.serialize sk in
      (* The extension is strictly additive: a traced envelope is the
         plain payload plus tag + two fixed64 words, re-checksummed. *)
      let traced =
        with_obs (fun () ->
            T.with_span "compat.ship" (fun () ->
                P.serialize ?trace:(T.current_context ()) sk))
      in
      (* length-prefixed "TCTX" tag (5 bytes) + two fixed64 words *)
      check_int "extension adds exactly tag + 16 bytes"
        (String.length plain + 5 + 16)
        (String.length traced);
      (* Plain envelopes decode with tracing on, traced envelopes decode
         with tracing off, and both yield the same sketch state. *)
      let decode_to bytes =
        let dst = fresh_sketch () in
        match P.deserialize_result dst bytes with
        | Ok () -> P.serialize dst
        | Error e -> Alcotest.failf "decode failed: %s" (LS.error_to_string e)
      in
      let from_plain = with_obs (fun () -> decode_to plain) in
      let from_traced = decode_to traced in
      check_bool "same decoded state from plain and traced" true (from_plain = from_traced);
      (* A plain envelope never records a linked decode span. *)
      with_obs (fun () ->
          T.reset ();
          ignore (decode_to plain);
          check_int "no decode span without the extension" 0 (List.length (T.spans ())));
      true)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "trace"
    [
      ( "forest",
        [ q prop_forest_well_formed; q prop_jsonl_round_trip ] );
      ( "wire",
        [ q prop_context_survives_faults; q prop_wire_backward_compatible ] );
    ]
