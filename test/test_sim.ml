open Ds_util
open Ds_graph
open Ds_stream
open Ds_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let make_stream seed ~n =
  let rng = Prng.create seed in
  let g = Gen.connected_gnp rng ~n ~p:0.08 in
  Stream_gen.with_churn (Prng.split rng) ~decoys:200 g

let test_round_robin () =
  let n = 60 in
  let stream = make_stream 1 ~n in
  let r = Cluster_sim.run (Prng.create 2) ~n ~servers:4 ~partition:Cluster_sim.Round_robin stream in
  check_bool "correct" true r.Cluster_sim.forest_correct;
  check_int "all updates routed" (Array.length stream)
    (Array.fold_left ( + ) 0 r.Cluster_sim.updates_per_server);
  (* Round robin balances within 1. *)
  let mn = Array.fold_left min max_int r.Cluster_sim.updates_per_server in
  let mx = Array.fold_left max 0 r.Cluster_sim.updates_per_server in
  check_bool "balanced" true (mx - mn <= 1);
  check_bool "communication accounted" true (r.Cluster_sim.bytes_total > 0)

let test_by_vertex () =
  let n = 60 in
  let stream = make_stream 3 ~n in
  let r = Cluster_sim.run (Prng.create 4) ~n ~servers:3 ~partition:Cluster_sim.By_vertex stream in
  check_bool "correct under locality partition" true r.Cluster_sim.forest_correct

let test_random_partition () =
  let n = 60 in
  let stream = make_stream 5 ~n in
  let r = Cluster_sim.run (Prng.create 6) ~n ~servers:5 ~partition:(Cluster_sim.Random 7) stream in
  check_bool "correct under random partition" true r.Cluster_sim.forest_correct

let test_random_partition_deterministic () =
  (* The Random partition draws routes from its own seeded stream, so two
     identically-seeded runs shard identically and the full report — byte
     counts included — replays exactly. *)
  let n = 60 in
  let stream = make_stream 30 ~n in
  let go () =
    Cluster_sim.run (Prng.create 31) ~n ~servers:5 ~partition:(Cluster_sim.Random 32) stream
  in
  check_bool "identical reports" true (go () = go ())

let test_single_server_degenerate () =
  let n = 40 in
  let stream = make_stream 8 ~n in
  let r = Cluster_sim.run (Prng.create 9) ~n ~servers:1 ~partition:Cluster_sim.Round_robin stream in
  check_bool "one server is just streaming" true r.Cluster_sim.forest_correct;
  check_int "one message" 1 (Array.length r.Cluster_sim.bytes_per_server)

let test_result_independent_of_partition () =
  (* The merged sketch is the sketch of the union regardless of sharding;
     with identical seeds all partitions give identical coordinators, hence
     identical forests. *)
  let n = 50 in
  let stream = make_stream 10 ~n in
  let run p = Cluster_sim.run (Prng.create 11) ~n ~servers:4 ~partition:p stream in
  let a = run Cluster_sim.Round_robin in
  let b = run Cluster_sim.By_vertex in
  let c = run (Cluster_sim.Random 12) in
  check_int "same forest size rr/bv" a.Cluster_sim.forest_edges b.Cluster_sim.forest_edges;
  check_int "same forest size rr/rand" a.Cluster_sim.forest_edges c.Cluster_sim.forest_edges;
  check_bool "all correct" true
    (a.Cluster_sim.forest_correct && b.Cluster_sim.forest_correct && c.Cluster_sim.forest_correct)

let test_ship_families () =
  let dim = 512 in
  let rng = Prng.create 30 in
  let updates =
    Array.init 2000 (fun _ -> (Prng.int rng dim, if Prng.bool rng then 1 else -1))
  in
  let reports = Cluster_sim.ship_families (Prng.create 31) ~dim ~servers:4 updates in
  check_bool "at least 4 distinct families" true
    (List.length (List.sort_uniq compare (List.map (fun r -> r.Cluster_sim.family) reports))
    >= 4);
  List.iter
    (fun r ->
      check_bool (r.Cluster_sim.family ^ " merged = direct") true r.Cluster_sim.matches_direct;
      check_bool (r.Cluster_sim.family ^ " wire bytes accounted") true
        (r.Cluster_sim.ship_bytes_total > 0
        && Array.length r.Cluster_sim.ship_bytes_per_server = 4);
      check_bool (r.Cluster_sim.family ^ " state accounted") true
        (r.Cluster_sim.ship_words_per_server > 0))
    reports

let test_ship_single_server () =
  let dim = 128 in
  let rng = Prng.create 32 in
  let updates = Array.init 400 (fun _ -> (Prng.int rng dim, 1)) in
  List.iter
    (fun r -> check_bool (r.Cluster_sim.family ^ " ok") true r.Cluster_sim.matches_direct)
    (Cluster_sim.ship_families (Prng.create 33) ~dim ~servers:1 updates)

let prop_ship_any_servers =
  QCheck.Test.make ~name:"generic shipping matches direct for any server count" ~count:10
    QCheck.(pair small_nat (int_range 1 6))
    (fun (seed, servers) ->
      let dim = 128 in
      let rng = Prng.create (seed + 40) in
      let updates =
        Array.init 500 (fun _ -> (Prng.int rng dim, if Prng.bool rng then 1 else -1))
      in
      Cluster_sim.ship_families (Prng.create (seed + 41)) ~dim ~servers updates
      |> List.for_all (fun r -> r.Cluster_sim.matches_direct))

let prop_sim_any_servers =
  QCheck.Test.make ~name:"cluster sim correct for any server count" ~count:15
    QCheck.(pair small_nat (int_range 1 8))
    (fun (seed, servers) ->
      let n = 30 in
      let stream = make_stream (seed + 20) ~n in
      let r =
        Cluster_sim.run (Prng.create (seed + 21)) ~n ~servers
          ~partition:Cluster_sim.Round_robin stream
      in
      r.Cluster_sim.forest_correct)

let () =
  Alcotest.run "sim"
    [
      ( "cluster",
        [
          Alcotest.test_case "round robin" `Quick test_round_robin;
          Alcotest.test_case "by vertex" `Quick test_by_vertex;
          Alcotest.test_case "random partition" `Quick test_random_partition;
          Alcotest.test_case "random partition deterministic" `Quick
            test_random_partition_deterministic;
          Alcotest.test_case "single server" `Quick test_single_server_degenerate;
          Alcotest.test_case "partition independence" `Quick test_result_independent_of_partition;
        ] );
      ( "ship",
        [
          Alcotest.test_case "full family inventory" `Quick test_ship_families;
          Alcotest.test_case "single server" `Quick test_ship_single_server;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_sim_any_servers;
          QCheck_alcotest.to_alcotest prop_ship_any_servers;
        ] );
    ]
