(* Pass-boundary checkpoint/resume of the two-pass spanner: a resumed run
   must be bit-identical to an uninterrupted one, and corrupt or mismatched
   checkpoints must be rejected. *)

open Ds_util
open Ds_graph
open Ds_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let workload seed ~n =
  let rng = Prng.create seed in
  let g = Gen.connected_gnp (Prng.split rng) ~n ~p:0.08 in
  let stream = Ds_stream.Stream_gen.with_churn (Prng.split rng) ~decoys:300 g in
  (g, stream)

let edges_of g =
  let acc = ref [] in
  Graph.iter_edges g (fun u v -> acc := (min u v, max u v) :: !acc);
  List.sort compare !acc

let run_direct ~seed ~n ~k stream =
  Two_pass_spanner.run (Prng.create seed) ~n ~params:(Two_pass_spanner.default_params ~k) stream

let take_checkpoint ~seed ~n ~k stream =
  Two_pass_spanner.checkpoint (Prng.create seed) ~n
    ~params:(Two_pass_spanner.default_params ~k)
    stream

let resume_from ~seed ~n ~k ~checkpoint stream =
  Two_pass_spanner.resume (Prng.create seed) ~n
    ~params:(Two_pass_spanner.default_params ~k)
    ~checkpoint stream

let test_resume_bit_identical () =
  let n = 80 and k = 3 and seed = 42 in
  let _g, stream = workload 5 ~n in
  let direct = run_direct ~seed ~n ~k stream in
  let ck = take_checkpoint ~seed ~n ~k stream in
  let resumed = resume_from ~seed ~n ~k ~checkpoint:ck stream in
  check_bool "same spanner edge set" true
    (edges_of direct.Two_pass_spanner.spanner = edges_of resumed.Two_pass_spanner.spanner);
  check_bool "same accessed-edge set" true
    (List.sort compare direct.Two_pass_spanner.accessed_edges
    = List.sort compare resumed.Two_pass_spanner.accessed_edges);
  check_int "same space accounting" direct.Two_pass_spanner.space_words
    resumed.Two_pass_spanner.space_words;
  check_bool "same diagnostics" true
    (direct.Two_pass_spanner.diagnostics = resumed.Two_pass_spanner.diagnostics)

let test_checkpoint_deterministic () =
  let n = 64 and k = 2 and seed = 9 in
  let _g, stream = workload 6 ~n in
  let a = take_checkpoint ~seed ~n ~k stream in
  let b = take_checkpoint ~seed ~n ~k stream in
  check_bool "equal seeds give byte-identical checkpoints" true (a = b)

let fails_with_failure f =
  match f () with
  | exception Failure _ -> true
  | exception _ -> false
  | _ -> false

let test_corruption_rejected () =
  let n = 64 and k = 2 and seed = 10 in
  let _g, stream = workload 7 ~n in
  let ck = take_checkpoint ~seed ~n ~k stream in
  let rng = Prng.create 77 in
  for _ = 1 to 15 do
    let pos = Prng.int rng (String.length ck) in
    let corrupted = Bytes.of_string ck in
    Bytes.set corrupted pos (Char.chr (Char.code ck.[pos] lxor (1 lsl Prng.int rng 8)));
    check_bool "bit flip rejected" true
      (fails_with_failure (fun () ->
           resume_from ~seed ~n ~k ~checkpoint:(Bytes.to_string corrupted) stream))
  done;
  List.iter
    (fun cut ->
      check_bool "truncation rejected" true
        (fails_with_failure (fun () ->
             resume_from ~seed ~n ~k ~checkpoint:(String.sub ck 0 cut) stream)))
    [ 0; 5; String.length ck / 2; String.length ck - 1 ]

let test_mismatch_rejected () =
  let n = 64 and seed = 11 in
  let _g, stream = workload 8 ~n in
  let ck = take_checkpoint ~seed ~n ~k:2 stream in
  check_bool "different k rejected" true
    (fails_with_failure (fun () -> resume_from ~seed ~n ~k:3 ~checkpoint:ck stream))

(* The typed face of checkpoint rejection: precise error per damage class. *)
let resume_result_from ~seed ~n ~k ~checkpoint stream =
  Two_pass_spanner.resume_result (Prng.create seed) ~n
    ~params:(Two_pass_spanner.default_params ~k)
    ~checkpoint stream

let test_typed_errors () =
  let n = 64 and k = 2 and seed = 14 in
  let _g, stream = workload 15 ~n in
  let ck = take_checkpoint ~seed ~n ~k stream in
  let expect name pred = function
    | Error e -> check_bool name true (pred e)
    | Ok _ -> Alcotest.failf "%s: accepted a damaged checkpoint" name
  in
  expect "empty is truncated"
    (function Two_pass_spanner.Truncated _ -> true | _ -> false)
    (resume_result_from ~seed ~n ~k ~checkpoint:"" stream);
  expect "cut blob fails the checksum"
    (function Two_pass_spanner.Checksum_mismatch -> true | _ -> false)
    (resume_result_from ~seed ~n ~k
       ~checkpoint:(String.sub ck 0 (String.length ck / 2))
       stream);
  let flipped =
    let b = Bytes.of_string ck in
    Bytes.set b 40 (Char.chr (Char.code ck.[40] lxor 4));
    Bytes.to_string b
  in
  expect "bit flip fails the checksum"
    (function Two_pass_spanner.Checksum_mismatch -> true | _ -> false)
    (resume_result_from ~seed ~n ~k ~checkpoint:flipped stream);
  expect "wrong k is a header mismatch"
    (function Two_pass_spanner.Header_mismatch _ -> true | _ -> false)
    (resume_result_from ~seed ~n ~k:3 ~checkpoint:ck stream);
  (* A well-checksummed blob that is not a TPS1 checkpoint at all: reuse the
     linear-sketch envelope of an unrelated family. *)
  let foreign =
    Ds_sketch.(
      Linear_sketch.serialize
        (module One_sparse.Linear)
        (One_sparse.create (Prng.create 16) ~dim:10))
  in
  expect "foreign envelope rejected"
    (function
      | Two_pass_spanner.Wrong_magic _ | Two_pass_spanner.Malformed_body _ -> true | _ -> false)
    (resume_result_from ~seed ~n ~k ~checkpoint:foreign stream);
  match resume_result_from ~seed ~n ~k ~checkpoint:ck stream with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "intact checkpoint rejected: %s" (Two_pass_spanner.checkpoint_error_to_string e)

(* Self-healing: a damaged checkpoint falls back to recomputing pass 1, and
   the recomputed result is bit-identical to an uninterrupted run. *)
let test_resume_or_restart () =
  let n = 64 and k = 2 and seed = 17 in
  let _g, stream = workload 18 ~n in
  let params = Two_pass_spanner.default_params ~k in
  let direct = run_direct ~seed ~n ~k stream in
  let ck = take_checkpoint ~seed ~n ~k stream in
  let same r =
    edges_of direct.Two_pass_spanner.spanner = edges_of r.Two_pass_spanner.spanner
    && direct.Two_pass_spanner.diagnostics = r.Two_pass_spanner.diagnostics
  in
  (let r, verdict =
     Two_pass_spanner.resume_or_restart (Prng.create seed) ~n ~params ~checkpoint:ck stream
   in
   check_bool "intact checkpoint resumes" true (verdict = `Resumed);
   check_bool "resumed = run" true (same r));
  let corrupt =
    let b = Bytes.of_string ck in
    Bytes.set b (String.length ck / 2) 'X';
    Bytes.to_string b
  in
  let r, verdict =
    Two_pass_spanner.resume_or_restart (Prng.create seed) ~n ~params ~checkpoint:corrupt stream
  in
  (match verdict with
  | `Recomputed Two_pass_spanner.Checksum_mismatch -> ()
  | `Recomputed e ->
      Alcotest.failf "unexpected error: %s" (Two_pass_spanner.checkpoint_error_to_string e)
  | `Resumed -> Alcotest.fail "corrupt checkpoint resumed");
  check_bool "recomputed = run, bit for bit" true (same r)

let test_distance_oracle_resume () =
  let n = 64 and k = 2 and seed = 12 in
  let _g, stream = workload 9 ~n in
  let direct = Distance_oracle.of_stream (Prng.create seed) ~n ~k stream in
  let ck = Distance_oracle.checkpoint_stream (Prng.create seed) ~n ~k stream in
  let resumed = Distance_oracle.resume_stream (Prng.create seed) ~n ~k ~checkpoint:ck stream in
  check_int "same spanner size" (Distance_oracle.spanner_edges direct)
    (Distance_oracle.spanner_edges resumed);
  let rng = Prng.create 13 in
  for _ = 1 to 50 do
    let u = Prng.int rng n and v = Prng.int rng n in
    check_bool "same query answers" true
      (Distance_oracle.query direct u v = Distance_oracle.query resumed u v)
  done

let prop_resume_identical =
  QCheck.Test.make ~name:"resume = run for any seed and size" ~count:15
    QCheck.(pair (int_range 1 1000) (int_range 24 72))
    (fun (seed, n) ->
      let _g, stream = workload (seed + n) ~n in
      let k = 2 in
      let direct = run_direct ~seed ~n ~k stream in
      let ck = take_checkpoint ~seed ~n ~k stream in
      let resumed = resume_from ~seed ~n ~k ~checkpoint:ck stream in
      edges_of direct.Two_pass_spanner.spanner = edges_of resumed.Two_pass_spanner.spanner
      && direct.Two_pass_spanner.diagnostics = resumed.Two_pass_spanner.diagnostics)

let () =
  Alcotest.run "checkpoint"
    [
      ( "two_pass_spanner",
        [
          Alcotest.test_case "resume bit-identical" `Quick test_resume_bit_identical;
          Alcotest.test_case "checkpoint deterministic" `Quick test_checkpoint_deterministic;
          Alcotest.test_case "corruption rejected" `Quick test_corruption_rejected;
          Alcotest.test_case "params mismatch rejected" `Quick test_mismatch_rejected;
          Alcotest.test_case "typed errors" `Quick test_typed_errors;
          Alcotest.test_case "resume or restart" `Quick test_resume_or_restart;
        ] );
      ( "distance_oracle",
        [ Alcotest.test_case "resume oracle" `Quick test_distance_oracle_resume ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_resume_identical ]);
    ]
