open Ds_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -------------------- Field -------------------- *)

let test_field_basics () =
  check_int "p" 0x7fffffff Field.p;
  check_int "of_int negative" (Field.p - 1) (Field.of_int (-1));
  check_int "of_int wraps" 1 (Field.of_int (Field.p + 1));
  check_int "add wraps" 0 (Field.add (Field.p - 1) 1);
  check_int "sub wraps" (Field.p - 1) (Field.sub 0 1);
  check_int "neg zero" 0 (Field.neg 0);
  check_int "mul" 6 (Field.mul 2 3)

let test_field_inverse () =
  let rng = Prng.create 7 in
  for _ = 1 to 200 do
    let a = 1 + Prng.int rng (Field.p - 1) in
    check_int "a * inv a = 1" 1 (Field.mul a (Field.inv a))
  done;
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Field.inv 0))

let test_field_pow () =
  check_int "b^0" 1 (Field.pow 12345 0);
  check_int "b^1" 12345 (Field.pow 12345 1);
  let rng = Prng.create 11 in
  for _ = 1 to 50 do
    let b = Prng.int rng Field.p and e = Prng.int rng 1000 in
    let naive = ref 1 in
    for _ = 1 to e do
      naive := Field.mul !naive (Field.of_int b)
    done;
    check_int "pow matches naive" !naive (Field.pow b e)
  done

let test_field_fermat () =
  (* a^(p-1) = 1 for a <> 0: the field really is a field. *)
  let rng = Prng.create 13 in
  for _ = 1 to 20 do
    let a = 1 + Prng.int rng (Field.p - 1) in
    check_int "Fermat" 1 (Field.pow a (Field.p - 1))
  done

let test_scale_int () =
  check_int "negative coefficient" (Field.sub 0 10) (Field.scale_int (-2) 5);
  check_int "zero coefficient" 0 (Field.scale_int 0 12345)

(* -------------------- Prng -------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check_int "same seed, same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_split_independent () =
  let a = Prng.create 42 in
  let c1 = Prng.split a in
  let c2 = Prng.split a in
  check_bool "children differ" false (Prng.next c1 = Prng.next c2)

let test_prng_split_named () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let c1 = Prng.split_named a "x" and c2 = Prng.split_named b "x" in
  check_int "same tag, same child" (Prng.next c1) (Prng.next c2);
  let a' = Prng.create 42 in
  let d = Prng.split_named a' "y" in
  let c1' = Prng.split_named (Prng.create 42) "x" in
  check_bool "different tag, different child" false (Prng.next c1' = Prng.next d)

let test_prng_int_range () =
  let rng = Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_prng_uniformity () =
  let rng = Prng.create 5 in
  let counts = Array.make 16 0 in
  let trials = 16000 in
  for _ = 1 to trials do
    let v = Prng.int rng 16 in
    counts.(v) <- counts.(v) + 1
  done;
  (* chi-square with 15 dof: 99.9th percentile is ~37.7 *)
  check_bool "chi-square sane" true (Stats.chi_square_uniform counts < 45.0)

let test_prng_geometric () =
  let rng = Prng.create 9 in
  let trials = 20000 in
  let zeros = ref 0 in
  for _ = 1 to trials do
    if Prng.geometric_level rng = 0 then incr zeros
  done;
  let frac = float_of_int !zeros /. float_of_int trials in
  check_bool "P(level 0) near 1/2" true (abs_float (frac -. 0.5) < 0.02)

let test_prng_gaussian () =
  let rng = Prng.create 3 in
  let xs = Array.init 5000 (fun _ -> Prng.gaussian rng) in
  check_bool "mean near 0" true (abs_float (Stats.mean xs) < 0.06);
  check_bool "stddev near 1" true (abs_float (Stats.stddev xs -. 1.0) < 0.06)

let test_prng_shuffle () =
  let rng = Prng.create 17 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

(* -------------------- Kwise -------------------- *)

let test_kwise_deterministic () =
  let h = Kwise.create (Prng.create 2) ~k:4 in
  check_int "stable" (Kwise.eval h 123) (Kwise.eval h 123)

let test_kwise_range () =
  let h = Kwise.create (Prng.create 2) ~k:4 in
  for x = 0 to 1000 do
    let v = Kwise.to_range h x ~bound:7 in
    check_bool "in range" true (v >= 0 && v < 7)
  done

let test_kwise_level_distribution () =
  let h = Kwise.create (Prng.create 23) ~k:8 in
  let trials = 20000 in
  let at_least_3 = ref 0 in
  for x = 0 to trials - 1 do
    if Kwise.level h x >= 3 then incr at_least_3
  done;
  let frac = float_of_int !at_least_3 /. float_of_int trials in
  check_bool "P(level >= 3) near 1/8" true (abs_float (frac -. 0.125) < 0.02)

let test_kwise_unit_uniform () =
  let h = Kwise.create (Prng.create 29) ~k:8 in
  let xs = Array.init 10000 (fun x -> Kwise.to_unit h x) in
  check_bool "mean near 1/2" true (abs_float (Stats.mean xs -. 0.5) < 0.02)

let test_kwise_large_keys () =
  (* Edge indices go up to n^2 > p; folded keys must still hash distinctly. *)
  let h = Kwise.create (Prng.create 31) ~k:4 in
  let a = Kwise.eval h ((1 lsl 40) + 5) and b = Kwise.eval h 5 in
  check_bool "high bits matter" false (a = b)

(* -------------------- Stats -------------------- *)

let test_stats_basics () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile [| 3.0; 1.0; 2.0 |] 0.0);
  Alcotest.(check (float 1e-9)) "p100" 3.0 (Stats.percentile [| 3.0; 1.0; 2.0 |] 100.0);
  Alcotest.(check (float 1e-9)) "p50" 2.0 (Stats.percentile [| 3.0; 1.0; 2.0 |] 50.0);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Stats.mean [||])

let test_stats_tv () =
  Alcotest.(check (float 1e-9)) "identical" 0.0
    (Stats.total_variation [| 1.0; 1.0 |] [| 2.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "disjoint" 1.0
    (Stats.total_variation [| 1.0; 0.0 |] [| 0.0; 1.0 |])

let test_stats_histogram () =
  let h = Stats.histogram [| 0.1; 0.2; 0.9; 1.5; -3.0 |] ~bins:2 ~lo:0.0 ~hi:1.0 in
  Alcotest.(check (array int)) "bins" [| 3; 2 |] h

(* -------------------- Wire -------------------- *)

let test_wire_int_roundtrip () =
  let values = [ 0; 1; -1; 63; -64; 1000000; -1000000; max_int / 4; -(max_int / 4) ] in
  let s = Wire.sink () in
  List.iter (Wire.write_int s) values;
  let src = Wire.source (Wire.contents s) in
  List.iter (fun v -> check_int "int roundtrip" v (Wire.read_int src)) values;
  check_int "fully consumed" 0 (Wire.remaining src)

let test_wire_array_and_tags () =
  let s = Wire.sink () in
  Wire.write_tag s "hdr";
  Wire.write_array s [| 3; -7; 0; 123456 |];
  let src = Wire.source (Wire.contents s) in
  Wire.expect_tag src "hdr";
  Alcotest.(check (array int)) "array" [| 3; -7; 0; 123456 |] (Wire.read_array src)

let test_wire_tag_mismatch () =
  let s = Wire.sink () in
  Wire.write_tag s "aaa";
  let src = Wire.source (Wire.contents s) in
  check_bool "mismatch detected" true
    (try
       Wire.expect_tag src "bbb";
       false
     with Failure _ -> true)

let test_wire_truncation () =
  let s = Wire.sink () in
  Wire.write_int s 1000000;
  let full = Wire.contents s in
  let cut = String.sub full 0 (String.length full - 1) in
  check_bool "truncation detected" true
    (try
       ignore (Wire.read_int (Wire.source cut));
       false
     with Failure _ -> true)

let test_wire_compact () =
  (* Small counters should cost ~1 byte each. *)
  let s = Wire.sink () in
  for _ = 1 to 100 do
    Wire.write_int s 0
  done;
  check_bool "zeros are 1 byte" true (String.length (Wire.contents s) = 100)

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire arrays roundtrip" ~count:200
    QCheck.(small_list int)
    (fun xs ->
      let a = Array.of_list xs in
      let s = Wire.sink () in
      Wire.write_array s a;
      let src = Wire.source (Wire.contents s) in
      Wire.read_array src = a && Wire.remaining src = 0)

(* -------------------- Space -------------------- *)

let test_space () =
  check_int "bits" 63 (Space.words_to_bits 1);
  check_bool "mib positive" true (Space.words_to_mib 1024 > 0.0)

let pp_words_str w = Format.asprintf "%a" Space.pp_words w

let test_space_pp_words () =
  Alcotest.(check string) "zero" "0 w" (pp_words_str 0);
  Alcotest.(check string) "below Kw" "999 w" (pp_words_str 999);
  Alcotest.(check string) "Kw boundary" "1.0 Kw" (pp_words_str 1000);
  Alcotest.(check string) "Mw" "2.50 Mw" (pp_words_str 2_500_000);
  Alcotest.(check string) "Gw" "3.00 Gw" (pp_words_str 3_000_000_000)

let test_space_pp_words_negative () =
  Alcotest.check_raises "negative raises"
    (Invalid_argument "Space.pp_words: negative word count (-1)") (fun () ->
      ignore (pp_words_str (-1)))

let () =
  Alcotest.run "util"
    [
      ( "field",
        [
          Alcotest.test_case "basics" `Quick test_field_basics;
          Alcotest.test_case "inverse" `Quick test_field_inverse;
          Alcotest.test_case "pow" `Quick test_field_pow;
          Alcotest.test_case "fermat" `Quick test_field_fermat;
          Alcotest.test_case "scale_int" `Quick test_scale_int;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "split named" `Quick test_prng_split_named;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "geometric" `Quick test_prng_geometric;
          Alcotest.test_case "gaussian" `Quick test_prng_gaussian;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle;
        ] );
      ( "kwise",
        [
          Alcotest.test_case "deterministic" `Quick test_kwise_deterministic;
          Alcotest.test_case "range" `Quick test_kwise_range;
          Alcotest.test_case "level distribution" `Quick test_kwise_level_distribution;
          Alcotest.test_case "unit uniform" `Quick test_kwise_unit_uniform;
          Alcotest.test_case "large keys" `Quick test_kwise_large_keys;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "total variation" `Quick test_stats_tv;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
        ] );
      ( "wire",
        [
          Alcotest.test_case "int roundtrip" `Quick test_wire_int_roundtrip;
          Alcotest.test_case "arrays and tags" `Quick test_wire_array_and_tags;
          Alcotest.test_case "tag mismatch" `Quick test_wire_tag_mismatch;
          Alcotest.test_case "truncation" `Quick test_wire_truncation;
          Alcotest.test_case "compact zeros" `Quick test_wire_compact;
          QCheck_alcotest.to_alcotest prop_wire_roundtrip;
        ] );
      ( "space",
        [
          Alcotest.test_case "conversions" `Quick test_space;
          Alcotest.test_case "pp_words rendering" `Quick test_space_pp_words;
          Alcotest.test_case "pp_words negative" `Quick test_space_pp_words_negative;
        ] );
    ]
