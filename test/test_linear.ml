(* The linear-sketch interface: wire round-trips, merge-after-deserialize,
   and corruption fuzzing, uniformly over every registered sketch family. *)

open Ds_util
open Ds_sketch

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

module LS = Linear_sketch
module P = LS.Packed

(* ------------------------------------------------------------------ *)
(* The family registry lives in Linear_families (shared with the golden
   fixture generator); here it is consumed both packed (uniform wire
   checks) and typed (kernel-level merge properties, incl. aliasing). *)
(* ------------------------------------------------------------------ *)

let makers : (string * (unit -> P.t)) list =
  List.map
    (fun f -> (Linear_families.name f, fun () -> Linear_families.pack f))
    Linear_families.all

let maker name = List.assoc name makers

(* A deterministic pseudo-random update vector over the packed sketch's own
   index space, parameterised by a QCheck-supplied seed. *)
let apply_random_updates ?(count = 30) seed packed =
  let rng = Prng.create (0x5EED + seed) in
  let dim = P.dim packed in
  for _ = 1 to count do
    P.update packed ~index:(Prng.int rng dim) ~delta:(if Prng.bool rng then 2 else -1)
  done

(* ------------------------------------------------------------------ *)
(* Deterministic per-family checks                                     *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_bytes name () =
  let make = maker name in
  let a = make () in
  apply_random_updates 7 a;
  let msg = P.serialize a in
  let b = make () in
  P.deserialize_into b msg;
  check_string "reserialization is byte-identical" msg (P.serialize b)

let test_absorb_equals_inprocess name () =
  let make = maker name in
  (* b receives vec1 locally and vec2 over the wire; d receives both
     locally. Linearity says their counters coincide exactly. *)
  let b = make () and c = make () and d = make () in
  apply_random_updates 21 b;
  apply_random_updates 22 c;
  apply_random_updates 21 d;
  apply_random_updates 22 d;
  P.absorb b (P.serialize c);
  check_string "add-after-deserialize = in-process add" (P.serialize d) (P.serialize b)

let test_clone_zero_is_zero name () =
  let make = maker name in
  let a = make () in
  apply_random_updates 3 a;
  let z = P.clone_zero a in
  check_string "clone_zero serializes like a fresh sketch" (P.serialize (make ()))
    (P.serialize z)

let test_family_stamped name () =
  let a = (maker name) () in
  check_string "family name" name (P.family a);
  let msg = P.serialize a in
  check_bool "message mentions magic" true
    (String.length msg > 4 && String.sub msg 1 4 = "LSK1")

let fails_with_failure f =
  match f () with
  | exception Failure _ -> true
  | exception _ -> false
  | _ -> false

let test_truncation_detected name () =
  let make = maker name in
  let a = make () in
  apply_random_updates 11 a;
  let msg = P.serialize a in
  (* Every strict prefix must be rejected. Scan a spread of cut points
     including the boundary cases. *)
  let len = String.length msg in
  List.iter
    (fun cut ->
      let cut = min cut (len - 1) in
      let b = make () in
      check_bool
        (Printf.sprintf "truncation at %d detected" cut)
        true
        (fails_with_failure (fun () -> P.deserialize_into b (String.sub msg 0 cut))))
    [ 0; 1; 4; len / 2; len - 9; len - 1 ]

let test_bitflip_detected name () =
  let make = maker name in
  let a = make () in
  apply_random_updates 13 a;
  let msg = P.serialize a in
  let rng = Prng.create 999 in
  for _ = 1 to 20 do
    let pos = Prng.int rng (String.length msg) in
    let bit = Prng.int rng 8 in
    let corrupted = Bytes.of_string msg in
    Bytes.set corrupted pos (Char.chr (Char.code msg.[pos] lxor (1 lsl bit)));
    let b = make () in
    check_bool
      (Printf.sprintf "bit flip at %d.%d detected" pos bit)
      true
      (fails_with_failure (fun () -> P.deserialize_into b (Bytes.to_string corrupted)))
  done

let test_cross_family_rejected () =
  (* Every family's message must be rejected by every other family's
     reader: the family tag (or earlier, the checksum position) differs. *)
  List.iter
    (fun (sender, make_sender) ->
      let msg = P.serialize (make_sender ()) in
      List.iter
        (fun (receiver, make_receiver) ->
          if sender <> receiver then
            check_bool
              (Printf.sprintf "%s message rejected by %s" sender receiver)
              true
              (fails_with_failure (fun () -> P.deserialize_into (make_receiver ()) msg)))
        makers)
    makers

let test_wrong_shape_rejected () =
  (* Same family, different structural parameters: the shape header must
     catch it. *)
  let small = One_sparse.create (Prng.create 101) ~dim:100 in
  let large = One_sparse.create (Prng.create 101) ~dim:101 in
  One_sparse.update small ~index:5 ~delta:1;
  let msg = LS.serialize (module One_sparse.Linear) small in
  check_bool "dim-100 message rejected by dim-101 sketch" true
    (fails_with_failure (fun () -> LS.deserialize_into (module One_sparse.Linear) large msg))

let test_misra_gries_not_linear () =
  (* Misra-Gries cannot implement the interface (no add/sub/clone_zero):
     that is a compile-time fact; the runtime witness raises. *)
  let contains ~needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  (match Misra_gries.linear () with
  | exception Invalid_argument m ->
      check_bool "message names the family" true (contains ~needle:"misra_gries" m)
  | _ -> Alcotest.fail "Misra_gries.linear must raise Invalid_argument");
  let mg = Misra_gries.create ~k:5 in
  Alcotest.(check int) "space accounted" 12 (Misra_gries.space_in_words mg)

let test_not_linear_guard () =
  match LS.not_linear ~family:"bogus" ~reason:"testing" () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "not_linear must raise Invalid_argument"

(* ------------------------------------------------------------------ *)
(* Golden fixtures: the committed envelopes under golden/ were produced
   by the pre-Words (heap int-array) representation from the exact
   update stream in Linear_families. Reproducing them byte-for-byte
   pins the LSK1 wire format across the storage refactor.             *)
(* ------------------------------------------------------------------ *)

let test_golden name () =
  (* dune runtest runs in _build/default/test (fixtures at golden/);
     dune exec from the root sees them at test/golden/. *)
  let path =
    let local = Filename.concat "golden" (name ^ ".lsk1") in
    if Sys.file_exists local then local else Filename.concat "test" local
  in
  let ic = open_in_bin path in
  let expected = really_input_string ic (in_channel_length ic) in
  close_in ic;
  check_string
    (Printf.sprintf "golden fixture %s reproduced byte-for-byte (kernel=%s)" path Words.kernel)
    expected
    (Linear_families.golden_bytes (Linear_families.find name))

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let family_gen = QCheck.Gen.oneofl (List.map fst makers)

(* -- Words kernels against an int-array reference ------------------- *)

let field_p = 0x7fffffff

(* Magnitudes bounded so plain sums never overflow: the reference then
   needs no wraparound reasoning and must match the kernels exactly. *)
let word_gen = QCheck.Gen.int_range (-(1 lsl 50)) (1 lsl 50)
let field_gen = QCheck.Gen.int_range 0 (field_p - 1)

let ref_add a b = Array.mapi (fun i x -> x + b.(i)) a
let ref_sub a b = Array.mapi (fun i x -> x - b.(i)) a

(* Reference triple merge: words 0,1 plain; word 2 in the Mersenne field
   with both sides reduced -- Field.add/Field.sub respelled. *)
let ref_add_tri a b =
  Array.mapi
    (fun i x ->
      if i mod 3 = 2 then
        let s = x + b.(i) in
        if s >= field_p then s - field_p else s
      else x + b.(i))
    a

let ref_sub_tri a b =
  Array.mapi
    (fun i x ->
      if i mod 3 = 2 then
        let d = x - b.(i) in
        if d < 0 then d + field_p else d
      else x - b.(i))
    a

let kernel_agrees ~op ~ref_op (a, b) =
  let wa = Words.of_array a and wb = Words.of_array b in
  op wa wb;
  (* Aliased call on a third buffer: [op t t] must equal ref_op a a. *)
  let wc = Words.of_array a in
  op wc wc;
  Words.to_array wa = ref_op a b && Words.to_array wc = ref_op a a

let plain_pairs =
  QCheck.make
    QCheck.Gen.(
      map
        (fun ps -> (Array.of_list (List.map fst ps), Array.of_list (List.map snd ps)))
        (small_list (pair word_gen word_gen)))

let tri_gen = QCheck.Gen.(triple word_gen word_gen field_gen)

let tri_pairs =
  QCheck.make
    QCheck.Gen.(
      map
        (fun ts ->
          let arr pick =
            Array.of_list
              (List.concat_map
                 (fun t ->
                   let a0, a1, a2 = pick t in
                   [ a0; a1; a2 ])
                 ts)
          in
          (arr fst, arr snd))
        (small_list (pair tri_gen tri_gen)))

let prop_words_add =
  QCheck.Test.make ~name:"Words.add matches reference (incl. aliasing)" ~count:200 plain_pairs
    (kernel_agrees ~op:Words.add ~ref_op:ref_add)

let prop_words_sub =
  QCheck.Test.make ~name:"Words.sub matches reference (incl. aliasing)" ~count:200 plain_pairs
    (kernel_agrees ~op:Words.sub ~ref_op:ref_sub)

let prop_words_add_tri =
  QCheck.Test.make ~name:"Words.add_tri matches field reference (incl. aliasing)" ~count:200
    tri_pairs
    (kernel_agrees ~op:Words.add_tri ~ref_op:ref_add_tri)

let prop_words_sub_tri =
  QCheck.Test.make ~name:"Words.sub_tri matches field reference (incl. aliasing)" ~count:200
    tri_pairs
    (kernel_agrees ~op:Words.sub_tri ~ref_op:ref_sub_tri)

(* -- Typed family-level kernels (registry gives us the state type) --- *)

let prop_self_merge_doubles =
  QCheck.Test.make ~name:"aliased merge add t t = applying the stream twice" ~count:30
    QCheck.(pair (make family_gen) small_nat)
    (fun (name, seed) ->
      let (Linear_families.F f) = Linear_families.find name in
      let (module L) = f.impl in
      let a = f.make () and b = f.make () in
      let stream = Linear_families.update_stream ~dim:(L.dim a) seed in
      Linear_families.apply_stream f.impl a stream;
      Linear_families.apply_stream f.impl b stream;
      Linear_families.apply_stream f.impl b stream;
      L.add a a;
      LS.serialize f.impl a = LS.serialize f.impl b)

let prop_sub_cancels =
  QCheck.Test.make ~name:"sub cancels an added stream exactly" ~count:30
    QCheck.(triple (make family_gen) small_nat small_nat)
    (fun (name, s1, s2) ->
      let (Linear_families.F f) = Linear_families.find name in
      let (module L) = f.impl in
      let a = f.make () and c = f.make () and d = f.make () in
      let st1 = Linear_families.update_stream ~dim:(L.dim a) s1 in
      let st2 = Linear_families.update_stream ~dim:(L.dim a) s2 in
      Linear_families.apply_stream f.impl a st1;
      Linear_families.apply_stream f.impl a st2;
      Linear_families.apply_stream f.impl c st2;
      Linear_families.apply_stream f.impl d st1;
      L.sub a c;
      LS.serialize f.impl a = LS.serialize f.impl d)

let prop_reset_is_fresh =
  QCheck.Test.make ~name:"reset returns a used sketch to the fresh state" ~count:30
    QCheck.(pair (make family_gen) small_nat)
    (fun (name, seed) ->
      let (Linear_families.F f) = Linear_families.find name in
      let (module L) = f.impl in
      let a = f.make () in
      let stream = Linear_families.update_stream ~dim:(L.dim a) seed in
      Linear_families.apply_stream f.impl a stream;
      L.reset a;
      LS.serialize f.impl a = LS.serialize f.impl (f.make ()))

let prop_roundtrip =
  QCheck.Test.make ~name:"serialize/deserialize round-trips byte-for-byte" ~count:60
    QCheck.(pair (make family_gen) small_nat)
    (fun (name, seed) ->
      let make = maker name in
      let a = make () in
      apply_random_updates seed a;
      let msg = P.serialize a in
      let b = make () in
      P.deserialize_into b msg;
      P.serialize b = msg)

let prop_absorb_linear =
  QCheck.Test.make ~name:"absorb msg = add in-process, for any family and streams" ~count:40
    QCheck.(triple (make family_gen) small_nat small_nat)
    (fun (name, s1, s2) ->
      let make = maker name in
      let b = make () and c = make () and d = make () in
      apply_random_updates s1 b;
      apply_random_updates s2 c;
      apply_random_updates s1 d;
      apply_random_updates s2 d;
      P.absorb b (P.serialize c);
      P.serialize b = P.serialize d)

let prop_random_mutation_detected =
  QCheck.Test.make
    ~name:"any single-byte mutation or truncation raises Failure" ~count:150
    QCheck.(quad (make family_gen) small_nat small_nat small_nat)
    (fun (name, seed, pos_seed, kind) ->
      let make = maker name in
      let a = make () in
      apply_random_updates seed a;
      let msg = P.serialize a in
      let len = String.length msg in
      let pos = pos_seed mod len in
      let mutated =
        match kind mod 3 with
        | 0 -> String.sub msg 0 pos (* truncate *)
        | 1 ->
            (* flip one random bit *)
            let b = Bytes.of_string msg in
            Bytes.set b pos (Char.chr (Char.code msg.[pos] lxor (1 lsl (seed mod 8))));
            Bytes.to_string b
        | _ ->
            (* overwrite with an arbitrary byte (ensure a real change) *)
            let b = Bytes.of_string msg in
            let nb = Char.chr ((Char.code msg.[pos] + 1 + (seed mod 254)) land 0xff) in
            Bytes.set b pos nb;
            Bytes.to_string b
      in
      if mutated = msg then QCheck.assume_fail ()
      else
        let b = make () in
        fails_with_failure (fun () -> P.deserialize_into b mutated))

(* The space-accounting invariant behind the ledger (lib/obs): the wire
   body is the counters and nothing else, so it can never exceed
   [space_in_words] machine words, and the envelope around it is exactly
   the documented LSK1 header plus the 8-byte checksum -- no hidden
   state rides along when a sketch is shipped. *)
let prop_space_accounting =
  QCheck.Test.make ~name:"wire body <= 8 * space_in_words; envelope is exactly LSK1 header"
    ~count:60
    QCheck.(pair (make family_gen) small_nat)
    (fun (name, seed) ->
      let a = (maker name) () in
      apply_random_updates seed a;
      let msg = P.serialize a in
      let (P.T ((module L), sk)) = a in
      let body =
        let s = Wire.sink () in
        L.write_body sk s;
        String.length (Wire.contents s)
      in
      let envelope =
        let s = Wire.sink () in
        Wire.write_tag s "LSK1";
        Wire.write_tag s (P.family a);
        Wire.write_array s (P.shape a);
        String.length (Wire.contents s) + 8
      in
      String.length msg = envelope + body
      && body > 0
      && body <= 8 * P.space_in_words a)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_absorb_linear; prop_random_mutation_detected; prop_space_accounting ]

let kernel_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_words_add;
      prop_words_sub;
      prop_words_add_tri;
      prop_words_sub_tri;
      prop_self_merge_doubles;
      prop_sub_cancels;
      prop_reset_is_fresh;
    ]

let () =
  let per_family mk =
    List.map (fun (name, _) -> Alcotest.test_case name `Quick (mk name)) makers
  in
  Printf.printf "Words kernel in use: %s\n%!" Words.kernel;
  Alcotest.run "linear_sketch"
    [
      ("golden fixtures", per_family test_golden);
      ("roundtrip bytes", per_family test_roundtrip_bytes);
      ("absorb = in-process add", per_family test_absorb_equals_inprocess);
      ("clone_zero", per_family test_clone_zero_is_zero);
      ("family stamp", per_family test_family_stamped);
      ("truncation", per_family test_truncation_detected);
      ("bit flips", per_family test_bitflip_detected);
      ( "cross-family & shape",
        [
          Alcotest.test_case "cross-family rejected" `Quick test_cross_family_rejected;
          Alcotest.test_case "wrong shape rejected" `Quick test_wrong_shape_rejected;
        ] );
      ( "non-linear guard",
        [
          Alcotest.test_case "misra_gries refuses" `Quick test_misra_gries_not_linear;
          Alcotest.test_case "not_linear raises" `Quick test_not_linear_guard;
        ] );
      ("properties", qcheck_cases);
      ("words kernels", kernel_cases);
    ]
