(* Deterministic fault injection and the self-healing coordinator:
   plan determinism, channel semantics (fuzzed over sketch families),
   retry accounting, and the supervised cluster protocol's recovery and
   degraded-decode guarantees. *)

open Ds_util
open Ds_sketch
open Ds_fault

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

module FP = Fault_plan
module P = Linear_sketch.Packed

(* ------------------------------------------------------------------ *)
(* Fault plans                                                         *)
(* ------------------------------------------------------------------ *)

let grid f =
  for server = 0 to 4 do
    for message = 0 to 15 do
      for attempt = 0 to 4 do
        f ~server ~message ~attempt
      done
    done
  done

let test_plan_deterministic () =
  let a = FP.random ~seed:42 ~rate:0.3 in
  let b = FP.random ~seed:42 ~rate:0.3 in
  grid (fun ~server ~message ~attempt ->
      check_bool "same draw" true
        (FP.draw a ~server ~message ~attempt = FP.draw b ~server ~message ~attempt))

let test_plan_seed_matters () =
  let a = FP.random ~seed:1 ~rate:0.5 in
  let b = FP.random ~seed:2 ~rate:0.5 in
  let differ = ref false in
  grid (fun ~server ~message ~attempt ->
      if FP.draw a ~server ~message ~attempt <> FP.draw b ~server ~message ~attempt then
        differ := true);
  check_bool "different seeds differ somewhere" true !differ

let test_plan_rate_boundaries () =
  let zero = FP.random ~seed:7 ~rate:0.0 in
  let one = FP.random ~seed:7 ~rate:1.0 in
  grid (fun ~server ~message ~attempt ->
      check_bool "rate 0 never faults" true (FP.draw zero ~server ~message ~attempt = None);
      check_bool "rate 1 always faults" true (FP.draw one ~server ~message ~attempt <> None));
  grid (fun ~server ~message ~attempt ->
      check_bool "empty plan" true (FP.draw FP.none ~server ~message ~attempt = None))

let test_plan_of_list () =
  let plan = FP.of_list ~seed:3 [ ((1, 2, 0), FP.Crash); ((0, 0, 1), FP.Drop) ] in
  check_bool "override hit" true (FP.draw plan ~server:1 ~message:2 ~attempt:0 = Some FP.Crash);
  check_bool "override hit" true (FP.draw plan ~server:0 ~message:0 ~attempt:1 = Some FP.Drop);
  check_bool "elsewhere clean" true (FP.draw plan ~server:0 ~message:0 ~attempt:0 = None);
  check_bool "elsewhere clean" true (FP.draw plan ~server:1 ~message:2 ~attempt:1 = None)

let test_rate_roughly_respected () =
  let plan = FP.random ~seed:99 ~rate:0.2 in
  let total = ref 0 and faulted = ref 0 in
  grid (fun ~server ~message ~attempt ->
      incr total;
      if FP.draw plan ~server ~message ~attempt <> None then incr faulted);
  let observed = float_of_int !faulted /. float_of_int !total in
  check_bool "rate within loose bounds" true (observed > 0.1 && observed < 0.3)

(* ------------------------------------------------------------------ *)
(* Supervisor: backoff and retry accounting                            *)
(* ------------------------------------------------------------------ *)

let test_delay_schedule () =
  let p = Supervisor.default in
  Alcotest.(check (float 1e-9)) "first attempt free" 0.0 (Supervisor.delay_before p ~attempt:0);
  Alcotest.(check (float 1e-9)) "base" 1.0 (Supervisor.delay_before p ~attempt:1);
  Alcotest.(check (float 1e-9)) "doubled" 2.0 (Supervisor.delay_before p ~attempt:2);
  Alcotest.(check (float 1e-9)) "doubled again" 4.0 (Supervisor.delay_before p ~attempt:3);
  Alcotest.(check (float 1e-9)) "capped" 8.0 (Supervisor.delay_before p ~attempt:4);
  Alcotest.(check (float 1e-9)) "stays capped" 8.0 (Supervisor.delay_before p ~attempt:9)

let test_retry_succeeds_after_failures () =
  let result, stats =
    Supervisor.retry Supervisor.default (fun ~attempt ->
        if attempt < 2 then Error "transient" else Ok attempt)
  in
  check_bool "eventually ok" true (result = Ok 2);
  check_int "attempts" 3 stats.Supervisor.attempts;
  Alcotest.(check (float 1e-9)) "backoff 1+2" 3.0 stats.Supervisor.backoff

let test_retry_exhausts () =
  let calls = ref 0 in
  let result, stats =
    Supervisor.retry Supervisor.default (fun ~attempt:_ ->
        incr calls;
        Error "permanent")
  in
  check_bool "last error" true (result = Error "permanent");
  check_int "capped attempts" Supervisor.default.Supervisor.max_attempts !calls;
  check_int "stats agree" !calls stats.Supervisor.attempts;
  Alcotest.(check (float 1e-9)) "backoff 1+2+4+8" 15.0 stats.Supervisor.backoff

(* ------------------------------------------------------------------ *)
(* Channel semantics, fuzzed over sketch families: whatever the fault,
   an envelope either round-trips exactly, is detected as corrupt (the
   destination untouched), or never arrives. No silent wrong merge.    *)
(* ------------------------------------------------------------------ *)

let makers : (string * (unit -> P.t)) list =
  [
    ( "one_sparse",
      fun () -> P.pack (module One_sparse.Linear) (One_sparse.create (Prng.create 201) ~dim:80)
    );
    ( "count_sketch",
      fun () ->
        P.pack
          (module Count_sketch.Linear)
          (Count_sketch.create (Prng.create 202) ~dim:80
             ~params:{ Count_sketch.rows = 3; cols = 16; hash_degree = 4 }) );
    ( "l0_sampler",
      fun () ->
        P.pack
          (module L0_sampler.Linear)
          (L0_sampler.create (Prng.create 203) ~dim:80 ~params:L0_sampler.default_params) );
    ( "agm",
      fun () ->
        P.pack
          (module Ds_agm.Agm_sketch.Linear)
          (Ds_agm.Agm_sketch.create (Prng.create 204) ~n:12
             ~params:(Ds_agm.Agm_sketch.default_params ~n:12)) );
  ]

let fill sk seed =
  let rng = Prng.create (10_000 + seed) in
  for _ = 1 to 30 do
    P.update sk ~index:(Prng.int rng (P.dim sk)) ~delta:(Prng.int rng 9 - 4)
  done

let fault_gen =
  QCheck.Gen.(
    oneof
      [
        return FP.Crash;
        return FP.Drop;
        map (fun k -> FP.Corrupt (1 + k)) (int_bound 3);
        return FP.Truncate;
        return FP.Duplicate;
        map (fun d -> FP.Delay (1 + d)) (int_bound 2);
      ])

let prop_no_silent_wrong_merge =
  QCheck.Test.make ~name:"any fault: round-trip, detected, or dropped — never wrong merge"
    ~count:120
    QCheck.(
      triple (make (Gen.oneofl (List.map fst makers))) (make fault_gen) small_nat)
    (fun (family, fault, seed) ->
      let make = List.assoc family makers in
      let src = make () in
      fill src seed;
      let msg = P.serialize src in
      let plan = FP.of_list ~seed [ ((0, 0, 0), fault) ] in
      let rng = FP.channel_rng plan ~server:0 ~message:0 ~attempt:0 in
      let dst = make () in
      let before = P.serialize dst in
      let check_arrival bytes =
        if String.equal bytes msg then (
          (* Intact arrival must merge to exactly the sender's state. *)
          match P.absorb_result dst bytes with
          | Ok () -> String.equal (P.serialize dst) msg
          | Error _ -> false)
        else
          (* Damaged arrival must be rejected with the destination
             untouched. *)
          match P.absorb_result dst bytes with
          | Ok () -> false
          | Error _ -> String.equal (P.serialize dst) before
      in
      match FP.apply rng (FP.draw plan ~server:0 ~message:0 ~attempt:0) msg with
      | FP.Delivered bytes | FP.Duplicated bytes | FP.Delayed (_, bytes) -> check_arrival bytes
      | FP.Lost | FP.Crashed -> String.equal (P.serialize dst) before)

let prop_damage_is_real =
  QCheck.Test.make ~name:"corrupt/truncate always change the bytes" ~count:120
    QCheck.(pair (make (Gen.oneofl (List.map fst makers))) small_nat)
    (fun (family, seed) ->
      let make = List.assoc family makers in
      let src = make () in
      fill src seed;
      let msg = P.serialize src in
      let plan = FP.of_list ~seed [ ((0, 0, 0), FP.Corrupt 2); ((0, 1, 0), FP.Truncate) ] in
      let corrupted =
        match
          FP.apply
            (FP.channel_rng plan ~server:0 ~message:0 ~attempt:0)
            (Some (FP.Corrupt 2)) msg
        with
        | FP.Delivered b -> b
        | _ -> Alcotest.fail "corrupt must deliver"
      in
      let truncated =
        match
          FP.apply (FP.channel_rng plan ~server:0 ~message:1 ~attempt:0) (Some FP.Truncate) msg
        with
        | FP.Delivered b -> b
        | _ -> Alcotest.fail "truncate must deliver"
      in
      (not (String.equal corrupted msg))
      && String.length truncated < String.length msg
      && String.equal truncated (String.sub msg 0 (String.length truncated)))

(* ------------------------------------------------------------------ *)
(* The supervised cluster protocol                                     *)
(* ------------------------------------------------------------------ *)

open Ds_sim

let make_stream seed ~n =
  let rng = Prng.create seed in
  let g = Ds_graph.Gen.connected_gnp rng ~n ~p:0.1 in
  Ds_stream.Stream_gen.with_churn (Prng.split rng) ~decoys:150 g

let supervised ?mode ?policy ?allow_reingest ~plan ~seed ~n ~servers stream =
  Cluster_sim.run_supervised ?mode ?policy ?allow_reingest ~plan (Prng.create seed) ~n ~servers
    ~partition:Cluster_sim.Round_robin stream

(* The acceptance gate: a run through a plan carrying at least one crash,
   one corruption and one drop heals to the byte-identical merged sketch
   of the fault-free run. *)
let test_healed_run_matches_fault_free () =
  let n = 60 in
  let stream = make_stream 31 ~n in
  let clean = supervised ~plan:FP.none ~seed:32 ~n ~servers:3 stream in
  let plan =
    FP.of_list ~seed:33
      [
        ((0, 1, 0), FP.Crash);
        (* server 0 dies after shipping its first repetition *)
        ((1, 0, 0), FP.Corrupt 2);
        ((2, 2, 0), FP.Drop);
        ((1, 4, 0), FP.Duplicate);
        ((2, 5, 0), FP.Delay 2);
      ]
  in
  let faulted = supervised ~plan ~seed:32 ~n ~servers:3 stream in
  check_bool "clean run correct" true clean.Cluster_sim.sup_forest_correct;
  check_bool "faulted run correct" true faulted.Cluster_sim.sup_forest_correct;
  check_bool "faults were injected" true (faulted.Cluster_sim.sup_faults >= 5);
  check_bool "server 0 crashed" true (faulted.Cluster_sim.sup_crashed_servers = [ 0 ]);
  check_bool "server 0 reingested" true
    (List.mem 0 faulted.Cluster_sim.sup_reingested_servers);
  check_bool "nothing lost" true (faulted.Cluster_sim.sup_lost_servers = []);
  check_bool "duplicate rejected" true (faulted.Cluster_sim.sup_duplicates_rejected >= 1);
  check_bool "corruption detected" true (faulted.Cluster_sim.sup_decode_errors >= 1);
  check_bool "retries happened" true (faulted.Cluster_sim.sup_retries >= 1);
  check_string "merged state byte-identical"
    (Printf.sprintf "%Lx" clean.Cluster_sim.sup_merged_hash)
    (Printf.sprintf "%Lx" faulted.Cluster_sim.sup_merged_hash);
  check_int "full quorum after healing" faulted.Cluster_sim.sup_copies
    faulted.Cluster_sim.sup_quorum

let test_supervised_replayable () =
  let n = 50 in
  let stream = make_stream 41 ~n in
  let plan = FP.random ~seed:42 ~rate:0.15 in
  let a = supervised ~plan ~seed:43 ~n ~servers:4 stream in
  let b = supervised ~plan ~seed:43 ~n ~servers:4 stream in
  check_bool "replay gives the identical report" true (a = b)

let test_supervised_mode_independent () =
  let n = 50 in
  let stream = make_stream 51 ~n in
  let plan = FP.random ~seed:52 ~rate:0.15 in
  let seq = supervised ~plan ~seed:53 ~n ~servers:4 stream in
  Ds_par.Pool.with_pool ~domains:3 (fun pool ->
      let par = supervised ~mode:(`Parallel pool) ~plan ~seed:53 ~n ~servers:4 stream in
      check_bool "sequential = parallel under faults" true (seq = par))

let test_clean_plan_full_quorum () =
  let n = 40 in
  let stream = make_stream 61 ~n in
  let r = supervised ~plan:FP.none ~seed:62 ~n ~servers:3 stream in
  check_int "no faults" 0 r.Cluster_sim.sup_faults;
  check_int "no retries" 0 r.Cluster_sim.sup_retries;
  check_int "one attempt per message" r.Cluster_sim.sup_messages r.Cluster_sim.sup_attempts;
  check_int "full quorum" r.Cluster_sim.sup_copies r.Cluster_sim.sup_quorum;
  check_bool "correct" true r.Cluster_sim.sup_forest_correct

(* Without re-ingestion a repetition that never arrives shrinks the quorum
   and the certified failure probability degrades honestly. *)
let test_degraded_quorum_decode () =
  let n = 60 in
  let stream = make_stream 71 ~n in
  let copies = (Ds_agm.Agm_sketch.default_params ~n).Ds_agm.Agm_sketch.copies in
  (* Persistently drop server 1's repetition 3: every attempt fails. *)
  let drops =
    List.init Supervisor.default.Supervisor.max_attempts (fun a -> ((1, 3, a), FP.Drop))
  in
  let plan = FP.of_list ~seed:72 drops in
  let r = supervised ~allow_reingest:false ~plan ~seed:73 ~n ~servers:3 stream in
  check_int "one repetition lost" (copies - 1) r.Cluster_sim.sup_quorum;
  check_bool "server 1 unhealed" true (r.Cluster_sim.sup_lost_servers = [ 1 ]);
  check_bool "delta degraded but certified" true
    (r.Cluster_sim.sup_degraded_delta > Ds_agm.Agm_sketch.certified_delta ~n ~copies
    && r.Cluster_sim.sup_degraded_delta < 1.0);
  check_bool "quorum decode still correct" true r.Cluster_sim.sup_forest_correct;
  (* The same plan with healing enabled restores the full quorum. *)
  let healed = supervised ~plan ~seed:73 ~n ~servers:3 stream in
  check_int "healed quorum" copies healed.Cluster_sim.sup_quorum;
  check_bool "healed correct" true healed.Cluster_sim.sup_forest_correct

let test_late_crash_partial_quorum () =
  let n = 60 in
  let stream = make_stream 81 ~n in
  let copies = (Ds_agm.Agm_sketch.default_params ~n).Ds_agm.Agm_sketch.copies in
  (* Server 0 dies while shipping its last repetition. *)
  let plan = FP.of_list ~seed:82 [ ((0, copies - 1, 0), FP.Crash) ] in
  let r = supervised ~allow_reingest:false ~plan ~seed:83 ~n ~servers:3 stream in
  check_int "all but the last repetition usable" (copies - 1) r.Cluster_sim.sup_quorum;
  check_bool "server 0 lost" true (r.Cluster_sim.sup_lost_servers = [ 0 ]);
  check_bool "crash recorded" true (r.Cluster_sim.sup_crashed_servers = [ 0 ])

(* ------------------------------------------------------------------ *)
(* Supervised generic shipping                                         *)
(* ------------------------------------------------------------------ *)

let ship_updates seed ~dim ~count =
  let rng = Prng.create seed in
  Array.init count (fun _ -> (Prng.int rng dim, Prng.int rng 9 - 4))

let count_sketch_make seed =
  let shared = Prng.create seed in
  fun () ->
    Count_sketch.create (Prng.copy shared) ~dim:100
      ~params:{ Count_sketch.rows = 3; cols = 32; hash_degree = 4 }

let test_ship_supervised_heals () =
  let updates = ship_updates 91 ~dim:100 ~count:400 in
  let plan = FP.of_list ~seed:92 [ ((0, 0, 0), FP.Crash); ((2, 0, 0), FP.Corrupt 3) ] in
  let r =
    Cluster_sim.ship_supervised ~plan
      (module Count_sketch.Linear)
      ~make:(count_sketch_make 93) ~servers:4 updates
  in
  check_bool "healed matches direct" true r.Cluster_sim.ss_matches_direct;
  check_bool "crash healed" true (List.mem 0 r.Cluster_sim.ss_reingested_servers);
  check_bool "corruption detected" true (r.Cluster_sim.ss_decode_errors >= 1);
  check_bool "nothing lost" true (r.Cluster_sim.ss_lost_servers = [])

let test_ship_supervised_loss_detected () =
  let updates = ship_updates 94 ~dim:100 ~count:400 in
  let plan = FP.of_list ~seed:95 [ ((1, 0, 0), FP.Crash) ] in
  let r =
    Cluster_sim.ship_supervised ~allow_reingest:false ~plan
      (module Count_sketch.Linear)
      ~make:(count_sketch_make 96) ~servers:4 updates
  in
  check_bool "loss breaks equality" true (not r.Cluster_sim.ss_matches_direct);
  check_bool "server 1 lost" true (r.Cluster_sim.ss_lost_servers = [ 1 ])

let prop_supervised_any_rate =
  QCheck.Test.make ~name:"supervised run heals at any fault rate" ~count:8
    QCheck.(pair (1 -- 5) (0 -- 30))
    (fun (servers, rate_pct) ->
      let n = 30 in
      let stream = make_stream (100 + servers) ~n in
      let plan = FP.random ~seed:(200 + rate_pct) ~rate:(float_of_int rate_pct /. 100.) in
      let clean = supervised ~plan:FP.none ~seed:300 ~n ~servers stream in
      let r = supervised ~plan ~seed:300 ~n ~servers stream in
      r.Cluster_sim.sup_forest_correct
      && r.Cluster_sim.sup_merged_hash = clean.Cluster_sim.sup_merged_hash
      && r.Cluster_sim.sup_quorum = r.Cluster_sim.sup_copies)

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "seed matters" `Quick test_plan_seed_matters;
          Alcotest.test_case "rate boundaries" `Quick test_plan_rate_boundaries;
          Alcotest.test_case "explicit overrides" `Quick test_plan_of_list;
          Alcotest.test_case "rate respected" `Quick test_rate_roughly_respected;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "delay schedule" `Quick test_delay_schedule;
          Alcotest.test_case "retry recovers" `Quick test_retry_succeeds_after_failures;
          Alcotest.test_case "retry exhausts" `Quick test_retry_exhausts;
        ] );
      ( "channel",
        [
          QCheck_alcotest.to_alcotest prop_no_silent_wrong_merge;
          QCheck_alcotest.to_alcotest prop_damage_is_real;
        ] );
      ( "supervised",
        [
          Alcotest.test_case "healed = fault-free, byte for byte" `Quick
            test_healed_run_matches_fault_free;
          Alcotest.test_case "replayable" `Quick test_supervised_replayable;
          Alcotest.test_case "mode independent" `Quick test_supervised_mode_independent;
          Alcotest.test_case "clean plan" `Quick test_clean_plan_full_quorum;
          Alcotest.test_case "degraded quorum decode" `Quick test_degraded_quorum_decode;
          Alcotest.test_case "late crash" `Quick test_late_crash_partial_quorum;
          QCheck_alcotest.to_alcotest prop_supervised_any_rate;
        ] );
      ( "ship",
        [
          Alcotest.test_case "heals to direct equality" `Quick test_ship_supervised_heals;
          Alcotest.test_case "loss detected" `Quick test_ship_supervised_loss_detected;
        ] );
    ]
