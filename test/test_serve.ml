(* The serve layer: framed transport hardening, admission control and
   backpressure, crash-consistent checkpoint/recovery with quarantine,
   and the end-to-end kill -9 property — every acked update survives,
   bit-identically, under a seeded fault sweep. *)

open Ds_util
open Ds_serve
open Ds_fault
open Ds_sim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let tmp_counter = ref 0

let fresh_dir prefix =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !tmp_counter)
  in
  let rec rm path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        Unix.rmdir path
      end
      else Unix.unlink path
  in
  rm d;
  Unix.mkdir d 0o755;
  d

(* ------------------------------------------------------------------ *)
(* Framing: length prefixes and the incremental reader                 *)
(* ------------------------------------------------------------------ *)

let frame payload =
  let b = Buffer.create (String.length payload + 4) in
  Wire.write_frame b payload;
  Buffer.contents b

let test_frame_roundtrip () =
  let r = Frame_reader.create () in
  Frame_reader.feed r (frame "hello" ^ frame "" ^ frame "world");
  let next () =
    match Frame_reader.next r with Ok (Some p) -> p | _ -> Alcotest.fail "expected frame"
  in
  check_string "first" "hello" (next ());
  check_string "second" "" (next ());
  check_string "third" "world" (next ());
  check_bool "drained" true (Frame_reader.next r = Ok None)

let test_frame_negative_rejected () =
  let r = Frame_reader.create () in
  Frame_reader.feed r "\xff\xff\xff\xff";
  (match Frame_reader.next r with
  | Error (Wire.Frame_negative l) -> check_bool "negative" true (l < 0)
  | _ -> Alcotest.fail "negative length must be a typed error");
  (* Poisoned: even valid bytes afterwards never produce frames. *)
  Frame_reader.feed r (frame "x");
  check_bool "poisoned" true (match Frame_reader.next r with Error _ -> true | _ -> false)

let test_frame_oversized_rejected () =
  let r = Frame_reader.create ~max_frame:1024 () in
  (* Header declares 2^30 bytes; the reader must refuse from the 4 header
     bytes alone, before any payload allocation. *)
  let b = Buffer.create 4 in
  Wire.write_frame_header b (1 lsl 30);
  Frame_reader.feed r (Buffer.contents b);
  match Frame_reader.next r with
  | Error (Wire.Frame_too_large { length; max }) ->
      check_int "declared" (1 lsl 30) length;
      check_int "ceiling" 1024 max
  | _ -> Alcotest.fail "oversized length must be a typed error"

(* Fuzz: any chunking of any frame sequence reassembles exactly. *)
let prop_reader_chunking =
  QCheck.Test.make ~name:"frame reader: any chunking reassembles exactly" ~count:200
    QCheck.(pair (small_list (string_of_size Gen.small_nat)) small_nat)
    (fun (payloads, salt) ->
      let wire = String.concat "" (List.map frame payloads) in
      let rng = Prng.create (0xF00D + salt) in
      let r = Frame_reader.create () in
      let pos = ref 0 in
      let len = String.length wire in
      let out = ref [] in
      let drain () =
        let continue = ref true in
        while !continue do
          match Frame_reader.next r with
          | Ok (Some p) -> out := p :: !out
          | Ok None -> continue := false
          | Error _ -> QCheck.Test.fail_report "reader failed on valid input"
        done
      in
      while !pos < len do
        let k = 1 + Prng.int rng (min 7 (len - !pos)) in
        Frame_reader.feed r (String.sub wire !pos k);
        pos := !pos + k;
        drain ()
      done;
      drain ();
      List.rev !out = payloads && Frame_reader.buffered r = 0)

(* Fuzz: garbage prefixes never crash the reader — they either parse as
   (bounded) frames or fail with a typed error. *)
let prop_reader_garbage =
  QCheck.Test.make ~name:"frame reader: garbage is typed-rejected or bounded" ~count:300
    QCheck.(string_of_size Gen.small_nat)
    (fun garbage ->
      let r = Frame_reader.create ~max_frame:4096 () in
      Frame_reader.feed r garbage;
      let rec go () =
        match Frame_reader.next r with
        | Ok (Some p) -> String.length p <= 4096 && go ()
        | Ok None -> true
        | Error _ -> true
      in
      go ())

(* ------------------------------------------------------------------ *)
(* SRV1 codec                                                          *)
(* ------------------------------------------------------------------ *)

let requests =
  [
    Sframe.Create { tenant = "t0"; stream = "s0"; family = "agm"; n = 64; seed = 7 };
    Sframe.Ingest { tenant = "t0"; stream = "s0"; seq = 3; payload = "\x00\xffbytes" };
    Sframe.Query { tenant = "a"; stream = "b" };
    Sframe.Seq_query { tenant = "a"; stream = "b" };
    Sframe.Flush { tenant = "a" };
    Sframe.Drop_copies { tenant = "a"; stream = "b"; copies = [ 0; 2; 5 ] };
    Sframe.Stats;
    Sframe.Stat_rollup;
  ]

let responses =
  [
    Sframe.Created { words = 123 };
    Sframe.Ack { seq = 9; durable_seq = 4 };
    Sframe.Nack { seq = 2; reason = Sframe.Overloaded { queue_depth = 10; bound = 8 } };
    Sframe.Nack
      { seq = -1; reason = Sframe.Quota_exceeded { used_words = 5; budget_words = 6 } };
    Sframe.Nack { seq = -1; reason = Sframe.Unknown_stream };
    Sframe.Nack { seq = -1; reason = Sframe.Stream_exists };
    Sframe.Nack { seq = -1; reason = Sframe.Unknown_family "nope" };
    Sframe.Nack { seq = 7; reason = Sframe.Bad_seq { expected = 4; got = 7 } };
    Sframe.Nack { seq = -1; reason = Sframe.Bad_frame "why" };
    Sframe.State
      {
        payload = "envelope";
        applied_seq = 5;
        copies_total = 12;
        copies_lost = 2;
        certified_delta = 0.125;
      };
    Sframe.Seqs { applied_seq = 5; durable_seq = 3 };
    Sframe.Flushed { generation = 2 };
    Sframe.Stats_reply { tenants = 1; streams = 2; applied_frames = 3; words = 4 };
    Sframe.Dropped { copies_lost = 3 };
    Sframe.Stat_rollup_reply { json = "{\"schema\":\"serve_stats/v1\",\"queue\":{}}" };
  ]

let test_sframe_roundtrip () =
  List.iter
    (fun r ->
      match Sframe.decode_request (Sframe.encode_request r) with
      | Ok r' -> check_bool "request" true (r = r')
      | Error m -> Alcotest.fail ("request decode: " ^ m))
    requests;
  List.iter
    (fun r ->
      match Sframe.decode_response (Sframe.encode_response r) with
      | Ok r' -> check_bool "response" true (r = r')
      | Error m -> Alcotest.fail ("response decode: " ^ m))
    responses

let prop_sframe_corruption_detected =
  QCheck.Test.make ~name:"SRV1: any single-byte corruption is a typed decode error"
    ~count:300
    QCheck.(pair small_nat small_nat)
    (fun (which, salt) ->
      let msg = Sframe.encode_request (List.nth requests (which mod List.length requests)) in
      let rng = Prng.create (0xBAD + salt) in
      let pos = Prng.int rng (String.length msg) in
      let b = Bytes.of_string msg in
      let flip = 1 + Prng.int rng 255 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor flip));
      match Sframe.decode_request (Bytes.to_string b) with
      | Error _ -> true
      | Ok r' ->
          (* A flip inside the payload of [Ingest] that still checksums is
             impossible; decode must never silently succeed on different
             bytes. *)
          QCheck.Test.fail_reportf "corrupted frame decoded as %s"
            (match r' with Sframe.Stats -> "stats" | _ -> "request"))

(* SRV1 trace context: the TCTX extension mirrors LSK1's — optional,
   inside the checksum, byte-invisible when absent. *)

let hex s = String.concat "" (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

let test_srv1_trace_roundtrip () =
  let r = Sframe.Ingest { tenant = "t0"; stream = "s0"; seq = 3; payload = "\x00\xffbytes" } in
  let ctx =
    { Ds_obs.Trace.trace_id = 0x1234_5678_9abc_def0L; span_id = 0x0fed_cba9_8765_4321L }
  in
  (match Sframe.decode_request_traced (Sframe.encode_request ~trace:ctx r) with
  | Ok (r', Some ctx') ->
      check_bool "request preserved" true (r = r');
      check_bool "context preserved" true (ctx = ctx')
  | Ok (_, None) -> Alcotest.fail "trace context lost in decode"
  | Error m -> Alcotest.fail ("traced decode: " ^ m));
  (* A current server accepts traced frames through the plain decoder
     (context dropped, request intact). *)
  (match Sframe.decode_request (Sframe.encode_request ~trace:ctx r) with
  | Ok r' -> check_bool "plain decode tolerates TCTX" true (r = r')
  | Error m -> Alcotest.fail ("plain decode of traced frame: " ^ m));
  (* And an untraced frame decodes with no context — old clients against
     a new server. *)
  match Sframe.decode_request_traced (Sframe.encode_request r) with
  | Ok (r', None) -> check_bool "untraced has no context" true (r = r')
  | Ok (_, Some _) -> Alcotest.fail "phantom context on untraced frame"
  | Error m -> Alcotest.fail ("untraced decode: " ^ m)

let test_srv1_untraced_golden_bytes () =
  (* Byte pin of the untraced encoding: new clients with tracing off
     must stay wire-identical to what pre-TCTX servers accepted, so
     this hex may never change. *)
  check_string "query golden" "08535256310602610262e202de936f75926d"
    (hex (Sframe.encode_request (Sframe.Query { tenant = "a"; stream = "b" })));
  check_string "ingest golden" "085352563104027402730204787975eac2b39fc10465"
    (hex
       (Sframe.encode_request
          (Sframe.Ingest { tenant = "t"; stream = "s"; seq = 1; payload = "xy" })));
  (* Tracing off goes through the same code path as the optional
     argument simply being absent. *)
  let r = Sframe.Flush { tenant = "a" } in
  check_string "?trace:None is byte-identical" (hex (Sframe.encode_request r))
    (hex (Sframe.encode_request ?trace:None r))

(* ------------------------------------------------------------------ *)
(* Connection-level fault draws                                        *)
(* ------------------------------------------------------------------ *)

let test_conn_draw_deterministic () =
  let plan = Fault_plan.random ~seed:99 ~rate:0.5 in
  for server = 0 to 5 do
    for message = 0 to 20 do
      let a = Fault_plan.draw_conn plan ~server ~message ~attempt:0 in
      let b = Fault_plan.draw_conn plan ~server ~message ~attempt:0 in
      check_bool "stateless draw" true (a = b)
    done
  done;
  (* The conn stream is salted separately from the message-fault stream:
     drawing conn faults must not perturb classic draws. *)
  let plan2 = Fault_plan.random ~seed:99 ~rate:0.5 in
  let classic = List.init 50 (fun m -> Fault_plan.draw plan2 ~server:1 ~message:m ~attempt:0) in
  List.iteri
    (fun m _ -> ignore (Fault_plan.draw_conn plan2 ~server:1 ~message:m ~attempt:0))
    classic;
  let classic' =
    List.init 50 (fun m -> Fault_plan.draw plan2 ~server:1 ~message:m ~attempt:0)
  in
  check_bool "conn draws do not disturb classic draws" true (classic = classic')

let test_conn_apply_shapes () =
  let plan = Fault_plan.random ~seed:7 ~rate:1.0 in
  let msg = "0123456789abcdef" in
  let seen = Hashtbl.create 4 in
  for message = 0 to 199 do
    let fault = Fault_plan.draw_conn plan ~server:3 ~message ~attempt:0 in
    check_bool "rate 1.0 always faults" true (fault <> None);
    let rng = Fault_plan.conn_rng plan ~server:3 ~message ~attempt:0 in
    (match Fault_plan.apply_conn rng fault msg with
    | Fault_plan.Conn_delivered _ -> Alcotest.fail "faulted send delivered whole"
    | Fault_plan.Conn_prefix_stall p | Fault_plan.Conn_prefix_close p ->
        check_bool "strict prefix" true
          (String.length p < String.length msg && p = String.sub msg 0 (String.length p))
    | Fault_plan.Conn_reordered_dup m -> check_string "dup carries the message" msg m);
    match fault with
    | Some f -> Hashtbl.replace seen (Fault_plan.conn_fault_name f) ()
    | None -> ()
  done;
  List.iter
    (fun k -> check_bool ("kind drawn: " ^ k) true (Hashtbl.mem seen k))
    Fault_plan.conn_kind_names

(* ------------------------------------------------------------------ *)
(* Registry: admission control and the sequence watermark              *)
(* ------------------------------------------------------------------ *)

let mk_payload ~family ~n ~seed updates =
  match Families.make ~family ~n ~seed with
  | Error m -> Alcotest.fail m
  | Ok made ->
      List.iter
        (fun (index, delta) ->
          Ds_sketch.Linear_sketch.Packed.update made.Families.packed ~index ~delta)
        updates;
      Ds_sketch.Linear_sketch.Packed.serialize made.Families.packed

let test_registry_quota () =
  let reg = Registry.create ~quota_words:200 in
  let first =
    Registry.create_stream reg ~tenant:"t" ~stream:"a" ~family:"count_sketch" ~n:64 ~seed:1
  in
  check_bool "first admitted" true (Result.is_ok first);
  (match
     Registry.create_stream reg ~tenant:"t" ~stream:"b" ~family:"agm" ~n:4096 ~seed:2
   with
  | Error (Sframe.Quota_exceeded { used_words; budget_words }) ->
      check_bool "budget echoed" true (budget_words = 200 && used_words > 0)
  | _ -> Alcotest.fail "over-budget create must be Quota_exceeded");
  (* Another tenant has its own budget. *)
  check_bool "budgets are per-tenant" true
    (Result.is_ok
       (Registry.create_stream reg ~tenant:"u" ~stream:"a" ~family:"count_sketch" ~n:64
          ~seed:1))

let test_registry_watermark () =
  let reg = Registry.create ~quota_words:100_000 in
  let s =
    match
      Registry.create_stream reg ~tenant:"t" ~stream:"s" ~family:"count_sketch" ~n:64 ~seed:5
    with
    | Ok s -> s
    | Error _ -> Alcotest.fail "create"
  in
  let p1 = mk_payload ~family:"count_sketch" ~n:64 ~seed:5 [ (1, 2) ] in
  let p2 = mk_payload ~family:"count_sketch" ~n:64 ~seed:5 [ (3, 4) ] in
  check_bool "seq 1 applies" true (Registry.apply s ~seq:1 ~payload:p1 = Ok Registry.Applied);
  check_bool "replayed seq 1 is a duplicate" true
    (Registry.apply s ~seq:1 ~payload:p1 = Ok Registry.Duplicate);
  (match Registry.apply s ~seq:3 ~payload:p2 with
  | Error (Sframe.Bad_seq { expected; got }) ->
      check_int "expected" 2 expected;
      check_int "got" 3 got
  | _ -> Alcotest.fail "gap must be Bad_seq");
  check_bool "seq 2 applies" true (Registry.apply s ~seq:2 ~payload:p2 = Ok Registry.Applied);
  check_int "watermark" 2 s.Registry.applied_seq;
  (* Duplicates leave the envelope untouched: absorb p1 again and the
     serialized state must not change. *)
  let before = Ds_sketch.Linear_sketch.Packed.serialize s.Registry.packed in
  ignore (Registry.apply s ~seq:1 ~payload:p1);
  ignore (Registry.apply s ~seq:2 ~payload:p2);
  check_string "duplicates are no-ops" before
    (Ds_sketch.Linear_sketch.Packed.serialize s.Registry.packed)

let test_registry_create_idempotent () =
  let reg = Registry.create ~quota_words:10_000_000 in
  let a = Registry.create_stream reg ~tenant:"t" ~stream:"s" ~family:"agm" ~n:64 ~seed:5 in
  let b = Registry.create_stream reg ~tenant:"t" ~stream:"s" ~family:"agm" ~n:64 ~seed:5 in
  (* Physical equality: the re-create must return the same live stream,
     not a fresh sketch (structural compare would poke closures). *)
  check_bool "identical triple is idempotent" true
    (match (a, b) with Ok x, Ok y -> x == y | _ -> false);
  match Registry.create_stream reg ~tenant:"t" ~stream:"s" ~family:"agm" ~n:64 ~seed:6 with
  | Error Sframe.Stream_exists -> ()
  | _ -> Alcotest.fail "mismatched triple must be Stream_exists"

(* ------------------------------------------------------------------ *)
(* Server core: backpressure                                           *)
(* ------------------------------------------------------------------ *)

let ingest_frame ~tenant ~stream ~seq ~payload =
  Sframe.frame (Sframe.encode_request (Sframe.Ingest { tenant; stream; seq; payload }))

let read_responses conn =
  let r = Frame_reader.create () in
  Frame_reader.feed r (Server.take_output conn);
  let rec go acc =
    match Frame_reader.next r with
    | Ok (Some p) -> (
        match Sframe.decode_response p with
        | Ok resp -> go (resp :: acc)
        | Error m -> Alcotest.fail ("response decode: " ^ m))
    | Ok None -> List.rev acc
    | Error _ -> Alcotest.fail "response framing"
  in
  go []

let test_server_backpressure () =
  let dir = fresh_dir "serve-bp" in
  let config =
    {
      (Server.default_config ~dir) with
      Server.queue_bound = 4;
      drain_per_tick = 100;
      checkpoint_every = 1_000_000;
    }
  in
  let server = Server.create config in
  let conn = Server.connect server in
  Server.feed server conn
    (Sframe.frame
       (Sframe.encode_request
          (Sframe.Create { tenant = "t"; stream = "s"; family = "count_sketch"; n = 64; seed = 3 })));
  (match read_responses conn with
  | [ Sframe.Created _ ] -> ()
  | _ -> Alcotest.fail "create response");
  let payload = mk_payload ~family:"count_sketch" ~n:64 ~seed:3 [ (1, 1) ] in
  (* 10 frames into a queue of 4 without draining: 4 queued, 6 refused
     with a typed Overloaded NACK naming the bound. *)
  for seq = 1 to 10 do
    Server.feed server conn (ingest_frame ~tenant:"t" ~stream:"s" ~seq ~payload)
  done;
  let nacks =
    List.filter
      (function
        | Sframe.Nack { reason = Sframe.Overloaded { bound; _ }; _ } ->
            check_int "bound echoed" 4 bound;
            true
        | _ -> Alcotest.fail "only Overloaded NACKs before drain")
      (read_responses conn)
  in
  check_int "six refused" 6 (List.length nacks);
  check_int "four queued" 4 (Server.pending_depth server);
  Server.drain server;
  let acks = read_responses conn in
  check_int "four acked after drain" 4 (List.length acks);
  List.iter
    (function
      | Sframe.Ack _ -> () | _ -> Alcotest.fail "queued frames must ack after drain")
    acks

(* ------------------------------------------------------------------ *)
(* Observability: STAT rollup, bounded gauges, stitched apply spans    *)
(* ------------------------------------------------------------------ *)

let with_obs_here f =
  Ds_obs.Export.enable ();
  Ds_obs.Export.reset ();
  Fun.protect
    ~finally:(fun () ->
      Ds_obs.Export.disable ();
      Ds_obs.Export.reset ())
    f

let create_frame ~tenant ~stream ~family ~n ~seed =
  Sframe.frame (Sframe.encode_request (Sframe.Create { tenant; stream; family; n; seed }))

let test_stat_rollup_through_core () =
  let dir = fresh_dir "serve-stat" in
  let config =
    {
      (Server.default_config ~dir) with
      Server.tenant_stats_cap = 2;
      checkpoint_every = 1_000_000;
      drain_per_tick = 100;
    }
  in
  let server = Server.create config in
  let conn = Server.connect server in
  let payload = mk_payload ~family:"count_sketch" ~n:64 ~seed:3 [ (1, 1) ] in
  List.iter
    (fun tenant ->
      Server.feed server conn
        (create_frame ~tenant ~stream:"s" ~family:"count_sketch" ~n:64 ~seed:3);
      Server.feed server conn (ingest_frame ~tenant ~stream:"s" ~seq:1 ~payload))
    [ "t0"; "t1"; "t2" ];
  Server.drain server;
  ignore (Server.take_output conn);
  Server.feed server conn (Sframe.frame (Sframe.encode_request Sframe.Stat_rollup));
  let json =
    match read_responses conn with
    | [ Sframe.Stat_rollup_reply { json } ] -> json
    | _ -> Alcotest.fail "expected exactly one Stat_rollup_reply"
  in
  match Json.parse json with
  | Error m -> Alcotest.failf "rollup unparseable by the in-tree reader: %s" m
  | Ok doc ->
      let num path =
        match Option.bind (Json.path path doc) Json.to_int with
        | Some v -> v
        | None -> Alcotest.failf "missing %s" (String.concat "." path)
      in
      check_string "schema" "serve_stats/v1"
        (Option.value ~default:"" (Option.bind (Json.member "schema" doc) Json.to_str));
      check_int "tenant total" 3 (num [ "totals"; "tenants" ]);
      check_int "applied total" 3 (num [ "totals"; "applied_frames" ]);
      check_bool "words total positive" true (num [ "totals"; "words" ] > 0);
      (* The per-tenant section is bounded by tenant_stats_cap: 2 shown,
         1 rolled into the omitted line — the rollup's size does not
         scale with tenant count. *)
      (match Option.bind (Json.member "tenants" doc) Json.to_obj with
      | Some shown -> check_int "per-tenant section capped" 2 (List.length shown)
      | None -> Alcotest.fail "no tenants object");
      check_int "omitted tenants counted" 1 (num [ "tenants_omitted"; "count" ]);
      check_bool "omitted words accounted" true (num [ "tenants_omitted"; "words" ] > 0)

let test_tenant_gauges_top_k () =
  with_obs_here @@ fun () ->
  let dir = fresh_dir "serve-gauge" in
  let config =
    {
      (Server.default_config ~dir) with
      Server.tenant_gauges = 1;
      checkpoint_every = 1_000_000;
      drain_per_tick = 100;
    }
  in
  let server = Server.create config in
  let conn = Server.connect server in
  (* heavy holds two streams, light one: only heavy earns a registry
     gauge under tenant_gauges = 1. *)
  Server.feed server conn
    (create_frame ~tenant:"heavy" ~stream:"a" ~family:"count_sketch" ~n:64 ~seed:1);
  Server.feed server conn
    (create_frame ~tenant:"heavy" ~stream:"b" ~family:"count_sketch" ~n:64 ~seed:2);
  Server.feed server conn
    (create_frame ~tenant:"light" ~stream:"a" ~family:"count_sketch" ~n:64 ~seed:3);
  ignore (Server.take_output conn);
  Server.checkpoint_now server;
  let gauges () = (Ds_obs.Metrics.snapshot ()).Ds_obs.Metrics.gauges in
  check_bool "heavy gauged" true (List.mem_assoc "serve.tenant.words.heavy" (gauges ()));
  check_bool "light not gauged (registry stays bounded)" false
    (List.mem_assoc "serve.tenant.words.light" (gauges ()));
  (* Weight flips: light grows past heavy, the next refresh evicts the
     stale gauge instead of accumulating one per tenant forever. *)
  Server.feed server conn
    (create_frame ~tenant:"light" ~stream:"b" ~family:"count_sketch" ~n:64 ~seed:4);
  Server.feed server conn
    (create_frame ~tenant:"light" ~stream:"c" ~family:"count_sketch" ~n:64 ~seed:5);
  ignore (Server.take_output conn);
  Server.checkpoint_now server;
  check_bool "light gauged after flip" true
    (List.mem_assoc "serve.tenant.words.light" (gauges ()));
  check_bool "heavy evicted after flip" false
    (List.mem_assoc "serve.tenant.words.heavy" (gauges ()))

let test_trace_context_stitches_apply () =
  with_obs_here @@ fun () ->
  let dir = fresh_dir "serve-tctx" in
  let config =
    { (Server.default_config ~dir) with Server.checkpoint_every = 1_000_000 }
  in
  let server = Server.create config in
  let conn = Server.connect server in
  Server.feed server conn
    (create_frame ~tenant:"t" ~stream:"s" ~family:"count_sketch" ~n:64 ~seed:3);
  ignore (Server.take_output conn);
  let payload = mk_payload ~family:"count_sketch" ~n:64 ~seed:3 [ (1, 1) ] in
  let ctx = { Ds_obs.Trace.trace_id = 0x77L; span_id = 0x99L } in
  Server.feed server conn
    (Sframe.frame
       (Sframe.encode_request ~trace:ctx
          (Sframe.Ingest { tenant = "t"; stream = "s"; seq = 1; payload })));
  Server.drain server;
  ignore (Server.take_output conn);
  match
    List.find_opt
      (fun s -> s.Ds_obs.Trace.name = "serve.apply")
      (Ds_obs.Trace.spans ())
  with
  | None -> Alcotest.fail "no serve.apply span recorded"
  | Some sp ->
      (* The apply span joined the sender's trace: same trace id,
         parented under the carried span — what Trace_tree stitches
         across processes. *)
      check_bool "trace id carried" true (sp.Ds_obs.Trace.trace_id = 0x77L);
      check_bool "parented under client span" true (sp.Ds_obs.Trace.parent_id = 0x99L)

(* ------------------------------------------------------------------ *)
(* Checkpoints: torn writes are quarantined, never decoded             *)
(* ------------------------------------------------------------------ *)

let build_store dir =
  let config =
    {
      (Server.default_config ~dir) with
      Server.queue_bound = 64;
      drain_per_tick = 64;
      checkpoint_every = 1_000_000;
    }
  in
  let server = Server.create config in
  let conn = Server.connect server in
  let specs = [ ("alpha", "agm", 64, 11); ("beta", "count_sketch", 64, 12) ] in
  List.iter
    (fun (stream, family, n, seed) ->
      Server.feed server conn
        (Sframe.frame
           (Sframe.encode_request (Sframe.Create { tenant = "t"; stream; family; n; seed }))))
    specs;
  ignore (Server.take_output conn);
  let send_batch seq =
    List.iter
      (fun (stream, family, n, seed) ->
        let payload = mk_payload ~family ~n ~seed [ ((seq * 7) mod n, seq) ] in
        Server.feed server conn (ingest_frame ~tenant:"t" ~stream ~seq ~payload))
      specs;
    Server.drain server;
    ignore (Server.take_output conn)
  in
  send_batch 1;
  Server.checkpoint_now server;
  send_batch 2;
  Server.checkpoint_now server;
  (config, specs)

let gen_file dir generation = Checkpoint.gen_path ~dir ~tenant:"t" ~generation

let recovered_applied config =
  let server = Server.create config in
  let tn =
    match Registry.find_tenant (Server.registry server) "t" with
    | Some tn -> tn
    | None -> Alcotest.fail "tenant lost entirely"
  in
  let applied =
    Hashtbl.fold (fun _ s acc -> max acc s.Registry.applied_seq) tn.Registry.streams 0
  in
  (server, applied)

let test_recovery_prefers_newest () =
  let dir = fresh_dir "serve-ck" in
  let config, _ = build_store dir in
  let server, applied = recovered_applied config in
  check_int "newest generation wins" 2 applied;
  check_int "nothing quarantined" 0 (Server.recovery_report server).Server.r_quarantined

let prop_torn_generation_quarantined =
  QCheck.Test.make
    ~name:"torn generation: quarantined, never decoded, previous generation loads" ~count:25
    QCheck.(small_nat)
    (fun salt ->
      let dir = fresh_dir "serve-torn" in
      let config, _ = build_store dir in
      let path = gen_file dir 2 in
      let len = (Unix.stat path).Unix.st_size in
      let keep = Prng.int (Prng.create (0x7EA2 + salt)) len in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd keep;
      Unix.close fd;
      let server, applied = recovered_applied config in
      let r = Server.recovery_report server in
      let quarantine_events =
        List.length
          (List.filter
             (fun e -> String.length e >= 10 && String.sub e 0 10 = "quarantine")
             (Server.events server))
      in
      (* Exactly one quarantine (the torn gen-2), fallback applied the
         gen-1 snapshot, and the torn file sits renamed for post-mortem. *)
      r.Server.r_quarantined = 1
      && quarantine_events = 1
      && applied = 1
      && Sys.file_exists (path ^ ".quarantined")
      && not (Sys.file_exists path))

let test_tmp_file_quarantined () =
  let dir = fresh_dir "serve-tmp" in
  let config, _ = build_store dir in
  (* A crash mid-write leaves gen-3.scp.tmp; recovery must quarantine it
     without decoding and keep serving generation 2. *)
  let tmp = gen_file dir 3 ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc "torn nonsense that must never be decoded";
  close_out oc;
  let server, applied = recovered_applied config in
  check_int "tmp quarantined" 1 (Server.recovery_report server).Server.r_quarantined;
  check_int "still at generation 2" 2 applied;
  check_bool "renamed for post-mortem" true (Sys.file_exists (tmp ^ ".quarantined"));
  (* The next checkpoint must not reuse generation 3 (the dead writer may
     have touched it): the new generation is 4. *)
  let conn = Server.connect server in
  let payload = mk_payload ~family:"count_sketch" ~n:64 ~seed:12 [ (5, 5) ] in
  Server.feed server conn (ingest_frame ~tenant:"t" ~stream:"beta" ~seq:3 ~payload);
  Server.drain server;
  Server.checkpoint_now server;
  check_bool "generation numbers never reused" true (Sys.file_exists (gen_file dir 4))

(* ------------------------------------------------------------------ *)
(* End to end: the kill -9 property under a seeded fault sweep         *)
(* ------------------------------------------------------------------ *)

let small_plan seed =
  Loadgen.make ~seed ~tenants:2 ~streams_per_tenant:2 ~updates:160 ~n:64 ~batch:4 ()

let test_sim_clean_run () =
  let dir = fresh_dir "serve-sim" in
  let r = Serve_sim.run ~plan:Fault_plan.none ~dir (small_plan 1) in
  check_bool "clean run converges bit-identically" true r.Serve_sim.sv_final_match;
  check_int "no faults" 0 r.Serve_sim.sv_conn_faults;
  check_int "no crashes" 0 r.Serve_sim.sv_crashes;
  check_bool "every frame acked" true (r.Serve_sim.sv_acked >= r.Serve_sim.sv_frames)

let test_sim_backpressure_fires () =
  let dir = fresh_dir "serve-simbp" in
  let r =
    Serve_sim.run ~queue_bound:3 ~drain_per_tick:2 ~burst:6 ~plan:Fault_plan.none ~dir
      (small_plan 2)
  in
  check_bool "overload NACKs observed" true (r.Serve_sim.sv_overloaded > 0);
  check_bool "still converges" true r.Serve_sim.sv_final_match

let test_sim_conn_faults_heal () =
  let dir = fresh_dir "serve-simcf" in
  let plan = Fault_plan.random ~seed:5 ~rate:0.15 in
  let r = Serve_sim.run ~plan ~dir (small_plan 3) in
  check_bool "faults were drawn" true (r.Serve_sim.sv_conn_faults > 0);
  check_bool "healed bit-identically" true r.Serve_sim.sv_final_match

let test_sim_kill9_sweep () =
  (* The acceptance property: for every (workload, plan, crash cadence)
     in the sweep, recovery + replay-by-linearity converges to the
     mirror envelope bit for bit, torn generations are quarantined and
     never decoded, and no acked update is ever lost. *)
  List.iter
    (fun (wseed, pseed, rate, crash_every, tear) ->
      let dir = fresh_dir "serve-kill9" in
      let plan = Fault_plan.random ~seed:pseed ~rate in
      let r =
        Serve_sim.run ~crash_every ~tear_on_crash:tear ~checkpoint_every:16 ~plan ~dir
          (small_plan wseed)
      in
      let label =
        Printf.sprintf "w%d p%d r%.2f c%d tear=%b" wseed pseed rate crash_every tear
      in
      check_bool (label ^ ": crashed") true (r.Serve_sim.sv_crashes > 0);
      check_bool (label ^ ": bit-identical convergence") true r.Serve_sim.sv_final_match;
      if tear then
        check_bool
          (label ^ ": every torn generation quarantined")
          true
          (r.Serve_sim.sv_quarantined >= r.Serve_sim.sv_torn && r.Serve_sim.sv_torn > 0))
    [
      (11, 21, 0.0, 25, false);
      (12, 22, 0.1, 30, false);
      (13, 23, 0.0, 25, true);
      (14, 24, 0.12, 20, true);
      (15, 25, 0.25, 35, true);
    ]

let test_sim_deterministic_replay () =
  let run seed =
    let dir = fresh_dir "serve-det" in
    Serve_sim.run ~crash_every:20 ~tear_on_crash:true ~checkpoint_every:16
      ~plan:(Fault_plan.random ~seed:77 ~rate:0.2)
      ~dir (small_plan seed)
  in
  let a = run 9 and b = run 9 in
  check_bool "equal-seed chaos runs produce identical reports" true (a = b)

(* ------------------------------------------------------------------ *)
(* Sockets: live server, real client, SIGKILL recovery                 *)
(* ------------------------------------------------------------------ *)

let socket_path () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ds-%d-%d.sock" (Unix.getpid ()) !tmp_counter)

let children = ref []

let reap_children () =
  List.iter
    (fun pid ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    !children;
  children := []

let start_server ?(obs = false) config ~socket:path =
  match Unix.fork () with
  | 0 ->
      (* Child: run the accept loop until signalled.  _exit avoids
         flushing the parent's test-runner buffers twice. *)
      if obs then Ds_obs.Export.enable ();
      (try Server.run_unix (Server.create config) ~socket_path:path ~tick:0.002 ()
       with _ -> ());
      Unix._exit 0
  | pid ->
      let rec wait_listening tries =
        if tries = 0 then Alcotest.fail "server did not come up";
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match Unix.connect fd (Unix.ADDR_UNIX path) with
        | () -> Unix.close fd
        | exception Unix.Unix_error _ ->
            Unix.close fd;
            Unix.sleepf 0.02;
            wait_listening (tries - 1)
      in
      wait_listening 250;
      children := pid :: !children;
      pid

let test_socket_end_to_end () =
  Fun.protect ~finally:reap_children @@ fun () ->
  let dir = fresh_dir "serve-sock" in
  incr tmp_counter;
  let path = socket_path () in
  let config =
    { (Server.default_config ~dir) with Server.checkpoint_every = 4; drain_per_tick = 64 }
  in
  let spec =
    List.find
      (fun s -> s.Loadgen.l_tenant = "tenant-00" && s.Loadgen.l_stream = "stream-00")
      (small_plan 31).Loadgen.p_specs
  in
  let payloads = Array.of_list (Loadgen.batches spec) in
  let total = Array.length payloads in
  let half = total / 2 in
  let ingest client lo hi =
    for i = lo to hi - 1 do
      match
        Client.ingest client ~tenant:spec.Loadgen.l_tenant ~stream:spec.Loadgen.l_stream
          ~payload:payloads.(i)
      with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("ingest: " ^ m)
    done
  in
  let pid = start_server config ~socket:path in
  let client = Client.connect ~socket_path:path ~delay_unit:0.005 () in
  (match
     Client.create_stream client ~tenant:spec.Loadgen.l_tenant ~stream:spec.Loadgen.l_stream
       ~family:spec.Loadgen.l_family ~n:spec.Loadgen.l_n ~seed:spec.Loadgen.l_seed
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("create: " ^ m));
  ingest client 0 half;
  (match Client.flush client ~tenant:spec.Loadgen.l_tenant with
  | Ok g -> check_bool "flushed a generation" true (g >= 1)
  | Error m -> Alcotest.fail ("flush: " ^ m));
  (* kill -9: no warning, no checkpoint, connection severed. *)
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  children := List.filter (fun p -> p <> pid) !children;
  let pid2 = start_server config ~socket:path in
  (* The same client object reconnects, resyncs from the recovered
     watermark and replays its unacked suffix by linearity. *)
  ingest client half total;
  (match
     Client.query client ~tenant:spec.Loadgen.l_tenant ~stream:spec.Loadgen.l_stream
   with
  | Ok st ->
      check_int "every acked frame survived" total st.Client.applied_seq;
      check_string "envelope bit-identical to the seeded mirror"
        (Loadgen.expected_envelope spec) st.Client.payload
  | Error m -> Alcotest.fail ("query: " ^ m));
  check_bool "client reconnected at least once" true (Client.reconnects client >= 1);
  Client.close client;
  Unix.kill pid2 Sys.sigterm;
  ignore (Unix.waitpid [] pid2);
  children := List.filter (fun p -> p <> pid2) !children

let test_resync_keeps_undurable_suffix () =
  (* The replay-by-linearity trap: reconnect to a LIVE server whose
     checkpoint lags (applied > durable).  Resync must prune the ledger
     only up to the durable watermark — the acked-but-undurable window
     is exactly what a later kill -9 rolls back, and the client is the
     only place it survives. *)
  Fun.protect ~finally:reap_children @@ fun () ->
  let dir = fresh_dir "serve-resync" in
  incr tmp_counter;
  let path = socket_path () in
  (* Checkpoints only on explicit flush, so the durable watermark stays
     pinned while acked frames accumulate above it. *)
  let config =
    {
      (Server.default_config ~dir) with
      Server.checkpoint_every = 1_000_000;
      drain_per_tick = 64;
    }
  in
  let spec =
    List.find
      (fun s -> s.Loadgen.l_tenant = "tenant-00" && s.Loadgen.l_stream = "stream-00")
      (small_plan 41).Loadgen.p_specs
  in
  let tenant = spec.Loadgen.l_tenant and stream = spec.Loadgen.l_stream in
  let payloads = Array.of_list (Loadgen.batches spec) in
  let total = Array.length payloads in
  let durable = total / 3 and applied = 2 * total / 3 in
  check_bool "workload large enough for three phases" true (durable >= 1 && applied > durable);
  let ingest client lo hi =
    for i = lo to hi - 1 do
      match Client.ingest client ~tenant ~stream ~payload:payloads.(i) with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("ingest: " ^ m)
    done
  in
  let pid = start_server config ~socket:path in
  let client = Client.connect ~socket_path:path ~delay_unit:0.005 () in
  (match
     Client.create_stream client ~tenant ~stream ~family:spec.Loadgen.l_family
       ~n:spec.Loadgen.l_n ~seed:spec.Loadgen.l_seed
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("create: " ^ m));
  ingest client 0 durable;
  (match Client.flush client ~tenant with
  | Ok g -> check_bool "flushed a generation" true (g >= 1)
  | Error m -> Alcotest.fail ("flush: " ^ m));
  ingest client durable applied;
  (* Force a reconnect with the server still alive: the resync sees
     applied > durable and must keep the (durable, applied] entries. *)
  Client.close client;
  (match Client.seqs client ~tenant ~stream with
  | Ok (a, d) ->
      check_int "applied watermark" applied a;
      check_int "durable watermark" durable d
  | Error m -> Alcotest.fail ("seqs: " ^ m));
  check_int "ledger keeps the acked-but-undurable suffix" (applied - durable)
    (Client.unacked_count client ~tenant ~stream);
  (* kill -9: the server recovers at the durable watermark; only the
     client's ledger can restore (durable, applied]. *)
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  children := List.filter (fun p -> p <> pid) !children;
  let pid2 = start_server config ~socket:path in
  ingest client applied total;
  (match Client.query client ~tenant ~stream with
  | Ok st ->
      check_int "every acked frame survived" total st.Client.applied_seq;
      check_string "envelope bit-identical to the seeded mirror"
        (Loadgen.expected_envelope spec) st.Client.payload
  | Error m -> Alcotest.fail ("query: " ^ m));
  Client.close client;
  Unix.kill pid2 Sys.sigterm;
  ignore (Unix.waitpid [] pid2);
  children := List.filter (fun p -> p <> pid2) !children

let test_flight_dump_survives_kill9 () =
  (* The flight recorder's whole reason to exist: kill -9 a loaded
     server mid-run, and the last persisted dump must be a complete
     JSON document carrying the spans of recently applied frames and a
     STAT snapshot — readable by the post-mortem path with no help from
     the dead process. *)
  with_obs_here @@ fun () ->
  Fun.protect ~finally:reap_children @@ fun () ->
  let dir = fresh_dir "serve-flight" in
  incr tmp_counter;
  let path = socket_path () in
  let config =
    {
      (Server.default_config ~dir) with
      Server.checkpoint_every = 4;
      drain_per_tick = 64;
      flight = true;
    }
  in
  let spec =
    List.find
      (fun s -> s.Loadgen.l_tenant = "tenant-00" && s.Loadgen.l_stream = "stream-00")
      (small_plan 51).Loadgen.p_specs
  in
  let payloads = Array.of_list (Loadgen.batches spec) in
  let pid = start_server ~obs:true config ~socket:path in
  let client = Client.connect ~socket_path:path ~delay_unit:0.005 () in
  (match
     Client.create_stream client ~tenant:spec.Loadgen.l_tenant
       ~stream:spec.Loadgen.l_stream ~family:spec.Loadgen.l_family ~n:spec.Loadgen.l_n
       ~seed:spec.Loadgen.l_seed
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("create: " ^ m));
  Array.iter
    (fun payload ->
      match
        Client.ingest client ~tenant:spec.Loadgen.l_tenant ~stream:spec.Loadgen.l_stream
          ~payload
      with
      | Ok () -> ()
      | Error m -> Alcotest.fail ("ingest: " ^ m))
    payloads;
  (* The parent traces its sends: every ingest above carried a TCTX
     context whose trace ids the server's apply spans must echo. *)
  (* Ids are 63-bit, beyond double precision: compare through the same
     float rounding the JSON reader applies. *)
  let client_traces =
    List.filter_map
      (fun s ->
        if s.Ds_obs.Trace.name = "client.send" then
          Some (Int64.to_float s.Ds_obs.Trace.trace_id)
        else None)
      (Ds_obs.Trace.spans ())
  in
  check_bool "client recorded send spans" true (client_traces <> []);
  (match Client.flush client ~tenant:spec.Loadgen.l_tenant with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("flush: " ^ m));
  Client.close client;
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  children := List.filter (fun p -> p <> pid) !children;
  match Flight.read ~dir with
  | Error m -> Alcotest.failf "no readable flight dump after kill -9: %s" m
  | Ok doc ->
      check_string "flight schema" "flight/v1"
        (Option.value ~default:"" (Option.bind (Json.member "schema" doc) Json.to_str));
      check_bool "dump sequence positive" true
        (match Option.bind (Json.member "seq" doc) Json.to_int with
        | Some s -> s >= 1
        | None -> false);
      let spans =
        Option.value ~default:[] (Option.bind (Json.member "spans" doc) Json.to_list)
      in
      let apply_traces =
        List.filter_map
          (fun sp ->
            match Option.bind (Json.member "name" sp) Json.to_str with
            | Some "serve.apply" -> Option.bind (Json.member "trace_id" sp) Json.to_float
            | _ -> None)
          spans
      in
      check_bool "dump holds applied-frame spans" true (apply_traces <> []);
      (* Cross-process stitch: the dead server's apply spans carry the
         live client's trace ids. *)
      check_bool "apply spans stitch into client traces" true
        (List.for_all (fun tid -> List.mem tid client_traces) apply_traces);
      check_string "embedded stats snapshot" "serve_stats/v1"
        (Option.value ~default:""
           (Option.bind
              (Option.bind (Json.member "stats" doc) (Json.member "schema"))
              Json.to_str))

let () =
  Alcotest.run "serve"
    [
      ( "framing",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "negative length rejected" `Quick test_frame_negative_rejected;
          Alcotest.test_case "oversized length rejected" `Quick test_frame_oversized_rejected;
          QCheck_alcotest.to_alcotest prop_reader_chunking;
          QCheck_alcotest.to_alcotest prop_reader_garbage;
        ] );
      ( "sframe",
        [
          Alcotest.test_case "roundtrip" `Quick test_sframe_roundtrip;
          QCheck_alcotest.to_alcotest prop_sframe_corruption_detected;
          Alcotest.test_case "trace context roundtrip" `Quick test_srv1_trace_roundtrip;
          Alcotest.test_case "untraced golden bytes" `Quick test_srv1_untraced_golden_bytes;
        ] );
      ( "conn faults",
        [
          Alcotest.test_case "stateless draws" `Quick test_conn_draw_deterministic;
          Alcotest.test_case "fault shapes" `Quick test_conn_apply_shapes;
        ] );
      ( "registry",
        [
          Alcotest.test_case "quota admission" `Quick test_registry_quota;
          Alcotest.test_case "sequence watermark" `Quick test_registry_watermark;
          Alcotest.test_case "idempotent create" `Quick test_registry_create_idempotent;
        ] );
      ("backpressure", [ Alcotest.test_case "bounded queue" `Quick test_server_backpressure ]);
      ( "observability",
        [
          Alcotest.test_case "stat rollup through core" `Quick test_stat_rollup_through_core;
          Alcotest.test_case "tenant gauges top-k" `Quick test_tenant_gauges_top_k;
          Alcotest.test_case "trace context stitches apply" `Quick
            test_trace_context_stitches_apply;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "newest generation wins" `Quick test_recovery_prefers_newest;
          QCheck_alcotest.to_alcotest prop_torn_generation_quarantined;
          Alcotest.test_case "tmp quarantined, numbers not reused" `Quick
            test_tmp_file_quarantined;
        ] );
      ( "kill -9",
        [
          Alcotest.test_case "clean sim" `Quick test_sim_clean_run;
          Alcotest.test_case "backpressure fires" `Quick test_sim_backpressure_fires;
          Alcotest.test_case "conn faults heal" `Quick test_sim_conn_faults_heal;
          Alcotest.test_case "seeded kill -9 sweep" `Quick test_sim_kill9_sweep;
          Alcotest.test_case "deterministic replay" `Quick test_sim_deterministic_replay;
        ] );
      ( "socket",
        [
          Alcotest.test_case "end to end with SIGKILL" `Quick test_socket_end_to_end;
          Alcotest.test_case "live resync keeps undurable suffix" `Quick
            test_resync_keeps_undurable_suffix;
          Alcotest.test_case "flight dump survives kill -9" `Quick
            test_flight_dump_survives_kill9;
        ] );
    ]
