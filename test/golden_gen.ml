(* Golden LSK1 fixture generator.

     dune exec test/golden_gen.exe -- [OUTDIR]

   Writes one serialized envelope per registered linear family, produced
   from the deterministic golden update stream in Linear_families.
   The committed fixtures under test/golden/ were generated at the commit
   immediately preceding the Words (off-heap buffer) refactor; test_linear
   asserts that today's serializer reproduces them byte-for-byte, pinning
   the LSK1 wire format across representation changes. *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun fam ->
      let name = Linear_families.name fam in
      let bytes = Linear_families.golden_bytes fam in
      let path = Filename.concat dir (name ^ ".lsk1") in
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc;
      Printf.printf "%-16s %6d bytes -> %s\n" name (String.length bytes) path)
    Linear_families.all
