(* API-contract tests: every documented precondition violation must raise the
   documented exception (and not, say, segfault-by-wraparound or silently
   succeed). Table-driven so that new contracts are one line to cover. *)

open Ds_util
open Ds_graph
open Ds_stream
open Ds_core

let raises_invalid f =
  try
    f ();
    false
  with Invalid_argument _ -> true

let raises_failure f =
  try
    f ();
    false
  with Failure _ -> true

let check name ok = Alcotest.(check bool) name true ok

let test_util_contracts () =
  check "Prng.int zero bound" (raises_invalid (fun () -> ignore (Prng.int (Prng.create 1) 0)));
  check "Kwise.create k=0" (raises_invalid (fun () -> ignore (Kwise.create (Prng.create 1) ~k:0)));
  check "Kwise.to_range bound 0"
    (raises_invalid (fun () ->
         ignore (Kwise.to_range (Kwise.create (Prng.create 1) ~k:2) 5 ~bound:0)));
  check "Field.pow negative" (raises_invalid (fun () -> ignore (Field.pow 2 (-1))));
  check "Stats.histogram zero bins"
    (raises_invalid (fun () -> ignore (Stats.histogram [| 1.0 |] ~bins:0 ~lo:0.0 ~hi:1.0)));
  check "Stats.total_variation mismatch"
    (raises_invalid (fun () -> ignore (Stats.total_variation [| 1.0 |] [| 1.0; 2.0 |])))

let test_sketch_contracts () =
  let open Ds_sketch in
  check "One_sparse dim 0" (raises_invalid (fun () -> ignore (One_sparse.create (Prng.create 1) ~dim:0)));
  let os = One_sparse.create (Prng.create 1) ~dim:10 in
  check "One_sparse index out of range"
    (raises_invalid (fun () -> One_sparse.update os ~index:10 ~delta:1));
  check "Sparse_recovery sparsity 0"
    (raises_invalid (fun () ->
         ignore
           (Sparse_recovery.create (Prng.create 1) ~dim:10
              ~params:{ Sparse_recovery.sparsity = 0; rows = 3; hash_degree = 4 })));
  let a = Sparse_recovery.create (Prng.create 1) ~dim:10 ~params:(Sparse_recovery.default_params ~sparsity:2) in
  let b = Sparse_recovery.create (Prng.create 2) ~dim:20 ~params:(Sparse_recovery.default_params ~sparsity:2) in
  check "Sparse_recovery incompatible add" (raises_invalid (fun () -> Sparse_recovery.add a b));
  check "merge_many empty" (raises_invalid (fun () -> ignore (Sparse_recovery.merge_many [])));
  check "Ams_f2 needs 4-wise"
    (raises_invalid (fun () ->
         ignore
           (Ams_f2.create (Prng.create 1) ~dim:10
              ~params:{ Ams_f2.rows = 4; reps = 1; hash_degree = 2 })));
  check "Misra_gries k=0" (raises_invalid (fun () -> ignore (Misra_gries.create ~k:0)));
  check "Misra_gries is not linear" (raises_invalid (fun () -> Misra_gries.linear ()));
  let mg = Misra_gries.create ~k:3 in
  Misra_gries.update mg 7;
  check "Misra_gries space accounted" (Misra_gries.space_in_words mg = 8)

let test_graph_contracts () =
  let g = Graph.create 4 in
  check "self loop" (raises_invalid (fun () -> Graph.add_edge g 2 2));
  check "vertex out of range" (raises_invalid (fun () -> Graph.add_edge g 0 7));
  check "remove absent" (raises_invalid (fun () -> Graph.remove_edge g 0 1));
  check "graph of size 0" (raises_invalid (fun () -> ignore (Graph.create 0)));
  check "edge_index self" (raises_invalid (fun () -> ignore (Edge_index.encode ~n:5 3 3)));
  check "edge_index decode range" (raises_invalid (fun () -> ignore (Edge_index.decode ~n:5 10)));
  let wg = Weighted_graph.create 3 in
  check "weighted non-positive" (raises_invalid (fun () -> Weighted_graph.add_edge wg 0 1 0.0));
  Weighted_graph.add_edge wg 0 1 2.0;
  check "weighted duplicate" (raises_invalid (fun () -> Weighted_graph.add_edge wg 0 1 1.0));
  check "gnm too many" (raises_invalid (fun () -> ignore (Gen.gnm (Prng.create 1) ~n:3 ~m:4)));
  check "watts-strogatz bad k"
    (raises_invalid (fun () -> ignore (Gen.watts_strogatz (Prng.create 1) ~n:6 ~k:3 ~beta:0.5)))

let test_stream_contracts () =
  check "weight class gamma 0"
    (raises_invalid (fun () -> ignore (Weight_class.create ~gamma:0.0 ~w_min:1.0 ~w_max:2.0)));
  check "weight class bad range"
    (raises_invalid (fun () -> ignore (Weight_class.create ~gamma:0.5 ~w_min:2.0 ~w_max:1.0)));
  check "delete_down_to not subgraph"
    (raises_invalid (fun () ->
         ignore
           (Stream_gen.delete_down_to (Prng.create 1) ~from:(Gen.path 4) (Gen.cycle 4))));
  check "invalid stream detected" (not (Update.is_valid ~n:4 [| Update.delete 0 1 |]));
  check "trace malformed" (raises_failure (fun () -> ignore (Trace.of_string "+ x y\n")))

let test_core_contracts () =
  check "two-pass k=0"
    (raises_invalid (fun () ->
         ignore
           (Two_pass_spanner.run (Prng.create 1) ~n:4
              ~params:(Two_pass_spanner.default_params ~k:0)
              [||])));
  check "additive d=0"
    (raises_invalid (fun () ->
         ignore
           (Additive_spanner.run (Prng.create 1) ~n:4
              ~params:(Additive_spanner.default_params ~n:4 ~d:0)
              [||])));
  check "multipass k=0"
    (raises_invalid (fun () ->
         ignore
           (Multipass_spanner.run (Prng.create 1) ~n:4
              ~params:(Multipass_spanner.default_params ~k:0)
              [||])));
  check "ind game d=1"
    (raises_invalid (fun () ->
         ignore (Ind_game.play (Prng.create 1) ~n:4 ~d:1 ~algo_budget:1 ~trials:1 ())));
  check "uniform sparsifier p=0"
    (raises_invalid (fun () ->
         ignore
           (Uniform_sparsifier.run (Prng.create 1) ~p:0.0
              (Weighted_graph.of_graph (Gen.path 3)))))

let test_agm_contracts () =
  let open Ds_agm in
  check "agm n=1"
    (raises_invalid (fun () ->
         ignore (Agm_sketch.create (Prng.create 1) ~n:1 ~params:(Agm_sketch.default_params ~n:1))));
  let s = Agm_sketch.create (Prng.create 1) ~n:4 ~params:(Agm_sketch.default_params ~n:4) in
  check "agm self loop" (raises_invalid (fun () -> Agm_sketch.update s ~u:2 ~v:2 ~delta:1));
  check "kconn k=0"
    (raises_invalid (fun () ->
         ignore
           (K_connectivity.create (Prng.create 1) ~n:4 ~k:0
              ~params:(Agm_sketch.default_params ~n:4))));
  check "agm wire garbage"
    (raises_failure (fun () -> Agm_sketch.deserialize_into s "not a sketch"))

let test_wire_corruption () =
  (* Corrupting serialized sketch bytes must fail loudly, never decode. *)
  let n = 10 in
  let open Ds_agm in
  let mk () = Agm_sketch.create (Prng.create 9) ~n ~params:(Agm_sketch.default_params ~n) in
  let a = mk () in
  Agm_sketch.update a ~u:0 ~v:1 ~delta:1;
  let bytes = Agm_sketch.serialize a in
  let truncated = String.sub bytes 0 (String.length bytes / 2) in
  check "truncated rejected"
    (raises_failure (fun () -> Agm_sketch.deserialize_into (mk ()) truncated))

let () =
  Alcotest.run "contracts"
    [
      ( "preconditions",
        [
          Alcotest.test_case "util" `Quick test_util_contracts;
          Alcotest.test_case "sketch" `Quick test_sketch_contracts;
          Alcotest.test_case "graph" `Quick test_graph_contracts;
          Alcotest.test_case "stream" `Quick test_stream_contracts;
          Alcotest.test_case "core" `Quick test_core_contracts;
          Alcotest.test_case "agm" `Quick test_agm_contracts;
          Alcotest.test_case "wire corruption" `Quick test_wire_corruption;
        ] );
    ]
