(* Parallel ingestion engine: pool mechanics and the linearity contracts the
   engine rests on. The load-bearing properties are the serialize-equality
   ones — a sharded-parallel ingest followed by a merge must reproduce the
   sequential sketch state {e bit for bit}, for every linear sketch, every
   partition policy and every shard count. *)

open Ds_util
open Ds_sketch
open Ds_par

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* One pool shared by every test in this binary: domains are an OS resource
   and alcotest runs cases sequentially, so spawning per-case is pure waste. *)
let pool = lazy (Pool.create ~domains:4 ())
let () = at_exit (fun () -> if Lazy.is_val pool then Pool.shutdown (Lazy.force pool))
let pool () = Lazy.force pool

(* -------------------- Pool mechanics -------------------- *)

let test_pool_order () =
  let results = Pool.run (pool ()) (List.init 20 (fun i () -> i * i)) in
  check_bool "submission order" true (results = List.init 20 (fun i -> i * i))

let test_pool_exception () =
  let ran = Array.make 8 false in
  let thunks =
    List.init 8 (fun i () ->
        ran.(i) <- true;
        if i = 3 then failwith "boom")
  in
  (match Pool.run (pool ()) thunks with
  | _ -> Alcotest.fail "expected the job's exception to propagate"
  | exception Failure msg -> check_string "propagated exception" "boom" msg);
  check_bool "remaining jobs still ran" true (Array.for_all Fun.id ran)

let test_pool_reuse () =
  let p = pool () in
  let sum l = List.fold_left ( + ) 0 l in
  let a = sum (Pool.run p (List.init 10 (fun i () -> i))) in
  let b = sum (Pool.run p (List.init 10 (fun i () -> 2 * i))) in
  check_int "first batch" 45 a;
  check_int "second batch (same pool)" 90 b

let test_pool_shutdown () =
  let p = Pool.create ~domains:2 () in
  check_int "size" 2 (Pool.size p);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  match Pool.submit p (fun () -> ()) with
  | () -> Alcotest.fail "submit after shutdown should raise"
  | exception Invalid_argument _ -> ()

let test_split_partitions () =
  let items = Array.init 103 Fun.id in
  List.iter
    (fun policy ->
      List.iter
        (fun shards ->
          let parts = Shard_ingest.split policy ~shards items in
          let all = Array.concat (Array.to_list parts) in
          Array.sort compare all;
          check_bool "every element exactly once" true (all = items))
        [ 1; 2; 3; 5 ])
    [ Shard_ingest.Chunked; Shard_ingest.Round_robin; Shard_ingest.By_key (fun x -> 7 * x) ]

(* -------------------- Work-stealing deque -------------------- *)

(* Owner drains its own deque: every element exactly once, LIFO-from-deal
   order is irrelevant (the engine only needs the exactly-once multiset). *)
let test_deque_owner_drains () =
  let d = Ws_deque.of_array (Array.init 57 Fun.id) in
  check_int "initial length" 57 (Ws_deque.length d);
  let seen = Array.make 57 0 in
  let rec go () =
    match Ws_deque.take d with
    | Some c ->
        seen.(c) <- seen.(c) + 1;
        go ()
    | None -> ()
  in
  go ();
  check_bool "each chunk exactly once" true (Array.for_all (( = ) 1) seen);
  check_int "drained" 0 (Ws_deque.length d)

let test_deque_steal_only () =
  let d = Ws_deque.of_array (Array.init 13 Fun.id) in
  let seen = Array.make 13 0 in
  let rec go () =
    match Ws_deque.steal d with
    | Some c ->
        seen.(c) <- seen.(c) + 1;
        go ()
    | None -> ()
  in
  go ();
  check_bool "thief alone sees every chunk once" true (Array.for_all (( = ) 1) seen)

(* Owner takes while concurrent thieves steal: the union of everything
   consumed must be each chunk exactly once — the property run_plan's
   termination certificate rests on.  (On a single-core host the domains
   timeshare, which still interleaves take and steal at the CAS level.) *)
let test_deque_concurrent_exactly_once () =
  let total = 2_000 in
  let d = Ws_deque.of_array (Array.init total Fun.id) in
  let consumed which =
    let acc = ref [] in
    let rec go () =
      match which () with
      | Some c ->
          acc := c :: !acc;
          go ()
      | None -> ()
    in
    go ();
    !acc
  in
  let thieves =
    List.init 3 (fun _ -> Domain.spawn (fun () -> consumed (fun () -> Ws_deque.steal d)))
  in
  let mine = consumed (fun () -> Ws_deque.take d) in
  let stolen = List.concat_map Domain.join thieves in
  let all = Array.of_list (mine @ stolen) in
  check_int "nothing lost, nothing duplicated" total (Array.length all);
  Array.sort compare all;
  check_bool "exactly the dealt chunks" true (all = Array.init total Fun.id)

(* -------------------- Chunk plans -------------------- *)

(* Structural invariants of [plan] under adversarial chunk sizes: the
   chunks tile [0, n) of [data] (in order for index policies; after a
   permutation for By_key), the deal covers every chunk exactly once, and
   [data] is a permutation of the input. *)
let check_plan_invariants ~name items (p : int Shard_ingest.plan) =
  let n = Array.length items in
  check_int (name ^ ": data length") n (Array.length p.Shard_ingest.data);
  let perm = Array.copy p.Shard_ingest.data in
  let sorted = Array.copy items in
  Array.sort compare perm;
  Array.sort compare sorted;
  check_bool (name ^ ": data is a permutation") true (perm = sorted);
  let nchunks = Array.length p.Shard_ingest.chunk_lo in
  check_int (name ^ ": lo/len arrays agree") nchunks (Array.length p.Shard_ingest.chunk_len);
  let covered = Array.make n 0 in
  Array.iteri
    (fun c lo ->
      let len = p.Shard_ingest.chunk_len.(c) in
      check_bool (name ^ ": chunk in bounds") true (lo >= 0 && len >= 1 && lo + len <= n);
      for i = lo to lo + len - 1 do
        covered.(i) <- covered.(i) + 1
      done)
    p.Shard_ingest.chunk_lo;
  check_bool (name ^ ": chunks tile the data") true (Array.for_all (( = ) 1) covered);
  let dealt = Array.make nchunks 0 in
  Array.iter
    (Array.iter (fun c ->
         check_bool (name ^ ": dealt chunk exists") true (c >= 0 && c < nchunks);
         dealt.(c) <- dealt.(c) + 1))
    p.Shard_ingest.deal;
  check_bool (name ^ ": every chunk dealt once") true (Array.for_all (( = ) 1) dealt)

let test_plan_invariants () =
  let items = Array.init 103 (fun i -> (i * 37) mod 11) in
  let n = Array.length items in
  List.iter
    (fun (pname, policy) ->
      List.iter
        (fun workers ->
          List.iter
            (fun chunk ->
              let name = Printf.sprintf "%s w=%d c=%d" pname workers chunk in
              check_plan_invariants ~name items
                (Shard_ingest.plan ~chunk policy ~workers items))
            [ 1; 3; n; n + 7 ])
        [ 1; 2; 5 ])
    [
      ("chunked", Shard_ingest.Chunked);
      ("round_robin", Shard_ingest.Round_robin);
      ("by_key", Shard_ingest.By_key (fun x -> x));
    ]

(* By_key must land every chunk of a key's segment on that key's owner:
   chunk boundaries never split a worker's key set across deques (stealing
   may move execution, but the deal itself is the routing contract). *)
let test_plan_by_key_routing () =
  let items = Array.init 200 (fun i -> (i * 13) mod 7) in
  let workers = 3 in
  let p = Shard_ingest.plan ~chunk:4 (Shard_ingest.By_key (fun x -> x)) ~workers items in
  Array.iteri
    (fun w chunks ->
      Array.iter
        (fun c ->
          let lo = p.Shard_ingest.chunk_lo.(c) in
          for i = lo to lo + p.Shard_ingest.chunk_len.(c) - 1 do
            check_int "item dealt to its key's owner" w
              ((p.Shard_ingest.data.(i) land max_int) mod workers)
          done)
        chunks)
    p.Shard_ingest.deal

(* -------------------- Serialize-equality properties -------------------- *)

let state_of write t =
  let sink = Wire.sink () in
  write t sink;
  Wire.contents sink

let dim = 200
let coord_gen = QCheck.(small_list (pair (int_bound (dim - 1)) (int_range (-3) 3)))

(* Zipf-ish coordinates: rank r drawn uniformly, index = exp(u ln dim) so
   P(index = k) ~ 1/(k+1).  A handful of hot keys carry most of the mass —
   exactly the distribution that collapses By_key partitions onto one
   worker and forces the stealing path. *)
let zipf_index r =
  let u = float_of_int (r land 0xFFFFF) /. 1048576.0 in
  min (dim - 1) (int_of_float (exp (u *. log (float_of_int dim))) - 1)

let zipf_coord_gen =
  QCheck.(
    small_list (pair (int_bound 0xFFFFF) (int_range (-3) 3))
    |> map (List.map (fun (r, d) -> (zipf_index r, d))))

let policies = [ ("chunked", Shard_ingest.Chunked); ("round_robin", Shard_ingest.Round_robin) ]

(* Worker counts past the pool size and chunk sizes that are degenerate
   (1), prime (7) or default: every combination must still reproduce the
   sequential bytes. *)
let worker_counts = [ None; Some 2; Some 5 ]
let chunk_sizes = [ None; Some 1; Some 7 ]

(* Run [w] through a sharded-parallel ingest under every policy, worker
   count and chunk size and demand byte-identical serialized state vs the
   sequential fold. *)
let sharded_matches ~create ~ingest ~update ~write w =
  let seq = create 11 in
  Array.iter (update seq) w;
  let expect = state_of write seq in
  List.for_all
    (fun (_, policy) ->
      List.for_all
        (fun workers ->
          List.for_all
            (fun chunk ->
              let par = create 11 in
              ingest (pool ()) ~policy ?workers ?chunk par w;
              state_of write par = expect)
            chunk_sizes)
        worker_counts)
    (("by_key", Shard_ingest.By_key (fun (i, _) -> i)) :: policies)

let prop_one_sparse_batch =
  QCheck.Test.make ~name:"one_sparse update_batch = fold of update" ~count:50 coord_gen
    (fun coords ->
      let w = Array.of_list coords in
      let a = One_sparse.create (Prng.create 7) ~dim in
      let b = One_sparse.create (Prng.create 7) ~dim in
      Array.iter (fun (index, delta) -> One_sparse.update a ~index ~delta) w;
      One_sparse.update_batch b w;
      state_of One_sparse.write a = state_of One_sparse.write b)

let sr_params = { Sparse_recovery.sparsity = 2; rows = 3; hash_degree = 6 }

let prop_sr_batch =
  QCheck.Test.make ~name:"sparse_recovery update_batch = fold of update" ~count:50 coord_gen
    (fun coords ->
      let w = Array.of_list coords in
      let a = Sparse_recovery.create (Prng.create 7) ~dim ~params:sr_params in
      let b = Sparse_recovery.create (Prng.create 7) ~dim ~params:sr_params in
      Array.iter (fun (index, delta) -> Sparse_recovery.update a ~index ~delta) w;
      Sparse_recovery.update_batch b w;
      state_of Sparse_recovery.write a = state_of Sparse_recovery.write b)

let prop_l0_batch =
  QCheck.Test.make ~name:"l0_sampler update_batch = fold of update" ~count:40 coord_gen
    (fun coords ->
      let w = Array.of_list coords in
      let a = L0_sampler.create (Prng.create 7) ~dim ~params:L0_sampler.default_params in
      let b = L0_sampler.create (Prng.create 7) ~dim ~params:L0_sampler.default_params in
      Array.iter (fun (index, delta) -> L0_sampler.update a ~index ~delta) w;
      L0_sampler.update_batch b w;
      state_of L0_sampler.write a = state_of L0_sampler.write b)

let sr_create seed = Sparse_recovery.create (Prng.create seed) ~dim ~params:sr_params

let sr_sharded_matches w =
  sharded_matches w ~create:sr_create
    ~ingest:(fun p ~policy ?workers ?chunk sk w ->
      Shard_ingest.sparse_recovery p ~policy ?workers ?chunk sk w)
    ~update:(fun sk (index, delta) -> Sparse_recovery.update sk ~index ~delta)
    ~write:Sparse_recovery.write

let prop_sr_sharded =
  QCheck.Test.make ~name:"sparse_recovery sharded+merge = sequential (all policies)"
    ~count:10 coord_gen (fun coords -> sr_sharded_matches (Array.of_list coords))

let prop_sr_sharded_zipf =
  QCheck.Test.make
    ~name:"sparse_recovery sharded+merge = sequential (zipf-skewed keys)" ~count:10
    zipf_coord_gen (fun coords -> sr_sharded_matches (Array.of_list coords))

let prop_l0_sharded =
  QCheck.Test.make ~name:"l0_sampler sharded+merge = sequential (all policies)" ~count:8
    coord_gen (fun coords ->
      sharded_matches (Array.of_list coords)
        ~create:(fun seed ->
          L0_sampler.create (Prng.create seed) ~dim ~params:L0_sampler.default_params)
        ~ingest:(fun p ~policy ?workers ?chunk sk w ->
          Shard_ingest.l0_sampler p ~policy ?workers ?chunk sk w)
        ~update:(fun sk (index, delta) -> L0_sampler.update sk ~index ~delta)
        ~write:L0_sampler.write)

(* The degenerate streams the chunk math is most likely to get wrong. *)
let test_sharded_edge_sizes () =
  List.iter
    (fun w ->
      check_bool
        (Printf.sprintf "len=%d stream matches" (Array.length w))
        true (sr_sharded_matches w))
    [ [||]; [| (0, 1) |]; [| (dim - 1, -2) |]; Array.make 3 (5, 1) ]

(* Edge streams for the AGM properties. *)
let agm_n = 24

let edge_gen =
  QCheck.(
    small_list (triple (int_bound (agm_n - 1)) (int_bound (agm_n - 2)) bool)
    |> map (fun l ->
           List.map
             (fun (u, dv, ins) ->
               let v = (u + 1 + dv) mod agm_n in
               if ins then Ds_stream.Update.insert u v else Ds_stream.Update.delete u v)
             l))

let agm_create seed =
  Ds_agm.Agm_sketch.create (Prng.create seed) ~n:agm_n
    ~params:(Ds_agm.Agm_sketch.default_params ~n:agm_n)

let prop_agm_batch =
  QCheck.Test.make ~name:"agm update_batch = fold of update" ~count:15 edge_gen (fun edges ->
      let module U = Ds_stream.Update in
      let w = Array.of_list edges in
      let a = agm_create 7 and b = agm_create 7 in
      Array.iter (fun (e : U.t) -> Ds_agm.Agm_sketch.update a ~u:e.U.u ~v:e.U.v ~delta:(U.delta e)) w;
      Ds_agm.Agm_sketch.update_batch b w;
      Ds_agm.Agm_sketch.serialize a = Ds_agm.Agm_sketch.serialize b)

let agm_sharded_matches w =
  let seq = agm_create 11 in
  Ds_agm.Agm_sketch.update_batch seq w;
  let expect = Ds_agm.Agm_sketch.serialize seq in
  List.for_all
    (fun (_, policy) ->
      List.for_all
        (fun workers ->
          List.for_all
            (fun chunk ->
              let par = agm_create 11 in
              Shard_ingest.agm (pool ()) ~policy ?workers ?chunk par w;
              Ds_agm.Agm_sketch.serialize par = expect)
            chunk_sizes)
        worker_counts)
    (("by_vertex", Shard_ingest.by_vertex) :: policies)

let prop_agm_sharded =
  QCheck.Test.make ~name:"agm sharded+merge = sequential (all policies)" ~count:6 edge_gen
    (fun edges -> agm_sharded_matches (Array.of_list edges))

(* Star streams around vertex 0: [by_vertex] routes every update to the
   owner of key 0, so one deque holds the whole stream and the other
   workers can only contribute by stealing. *)
let zipf_edge_gen =
  QCheck.(
    small_list (pair (int_bound (agm_n - 2)) bool)
    |> map (fun l ->
           List.map
             (fun (dv, ins) ->
               let v = 1 + dv in
               if ins then Ds_stream.Update.insert 0 v else Ds_stream.Update.delete 0 v)
             l))

let prop_agm_sharded_star =
  QCheck.Test.make ~name:"agm sharded+merge = sequential (single hot vertex)" ~count:6
    zipf_edge_gen (fun edges -> agm_sharded_matches (Array.of_list edges))

(* -------------------- Replica arenas -------------------- *)

(* Arena-backed runs must (a) reproduce the sequential bytes on every
   round — a recycled replica starts each round as the exact zero
   sketch — and (b) stop allocating replicas once every slot has been
   exercised: the arena's off-heap footprint is monotone during warm-up
   and constant afterwards. *)
let test_arena_reuse () =
  let rng = Prng.create 91 in
  let round _ =
    Array.init 600 (fun _ ->
        let u = Prng.int rng (agm_n - 1) in
        let v = u + 1 + Prng.int rng (agm_n - 1 - u) in
        if Prng.bool rng then Ds_stream.Update.insert u v else Ds_stream.Update.delete u v)
  in
  let streams = Array.init 5 round in
  let seq = agm_create 13 and par = agm_create 13 in
  let arena = Shard_ingest.agm_arena () in
  check_int "fresh arena holds nothing" 0 (Shard_ingest.arena_bytes arena);
  let footprint = ref 0 in
  Array.iteri
    (fun i w ->
      Ds_agm.Agm_sketch.update_batch seq w;
      Shard_ingest.agm (pool ()) ~workers:4 ~chunk:16 ~arena par w;
      check_string
        (Printf.sprintf "round %d bit-identical to sequential" i)
        (Ds_agm.Agm_sketch.serialize seq)
        (Ds_agm.Agm_sketch.serialize par);
      let b = Shard_ingest.arena_bytes arena in
      if i = 0 then footprint := b
      else begin
        check_bool (Printf.sprintf "round %d footprint monotone" i) true (b >= !footprint);
        footprint := b
      end)
    streams;
  (* With 4 workers on 600 tiny chunks, at least one replica beyond slot 0
     must have been created and priced. *)
  check_bool "arena priced its replicas" true (Shard_ingest.arena_bytes arena > 0);
  (* Steady state: one more run does not grow the arena. *)
  let before = Shard_ingest.arena_bytes arena in
  let w = round () in
  Ds_agm.Agm_sketch.update_batch seq w;
  Shard_ingest.agm (pool ()) ~workers:4 ~chunk:16 ~arena par w;
  check_string "steady-state round bit-identical" (Ds_agm.Agm_sketch.serialize seq)
    (Ds_agm.Agm_sketch.serialize par);
  check_int "steady-state footprint constant" before (Shard_ingest.arena_bytes arena)

(* The generic arena over the packed linear interface: recycling through
   [L.reset] must keep sparse-recovery ingest byte-identical too. *)
let test_arena_linear () =
  let make () = Sparse_recovery.create (Prng.create 19) ~dim ~params:sr_params in
  let seq = make () and par = make () in
  let arena = Shard_ingest.arena_of (module Sparse_recovery.Linear) in
  let rng = Prng.create 92 in
  for i = 1 to 4 do
    let w = Array.init 500 (fun _ -> (Prng.int rng dim, Prng.int rng 7 - 3)) in
    Array.iter (fun (index, delta) -> Sparse_recovery.update seq ~index ~delta) w;
    Shard_ingest.linear (pool ()) ~workers:4 ~chunk:16 ~arena
      (module Sparse_recovery.Linear)
      par w;
    check_string
      (Printf.sprintf "linear arena round %d bit-identical" i)
      (state_of Sparse_recovery.write seq)
      (state_of Sparse_recovery.write par)
  done

(* -------------------- Consumers -------------------- *)

(* A valid dynamic stream: deletions only target currently-live edges, so the
   offline ground-truth graph the consumers verify against is well-defined. *)
let random_stream seed ~n ~updates =
  let rng = Prng.create seed in
  let live = ref [] in
  let nlive = ref 0 in
  Array.init updates (fun _ ->
      if !nlive > 0 && Prng.int rng 5 = 0 then begin
        let k = Prng.int rng !nlive in
        let u, v = List.nth !live k in
        live := List.filteri (fun i _ -> i <> k) !live;
        decr nlive;
        Ds_stream.Update.delete u v
      end
      else begin
        let u = Prng.int rng n in
        let v = (u + 1 + Prng.int rng (n - 1)) mod n in
        live := (u, v) :: !live;
        incr nlive;
        Ds_stream.Update.insert u v
      end)

let test_cluster_sim_parallel_equal () =
  let stream = random_stream 31 ~n:48 ~updates:600 in
  List.iter
    (fun partition ->
      let seq =
        Ds_sim.Cluster_sim.run ~mode:`Sequential (Prng.create 5) ~n:48 ~servers:4 ~partition
          stream
      in
      let par =
        Ds_sim.Cluster_sim.run ~mode:(`Parallel (pool ())) (Prng.create 5) ~n:48 ~servers:4
          ~partition stream
      in
      check_bool "parallel report identical" true (seq = par);
      check_bool "forest verified" true seq.Ds_sim.Cluster_sim.forest_correct)
    [ Ds_sim.Cluster_sim.Round_robin; Ds_sim.Cluster_sim.By_vertex ]

let test_two_pass_parallel_equal () =
  let n = 32 in
  let stream = random_stream 33 ~n ~updates:400 in
  let params = Ds_core.Two_pass_spanner.default_params ~k:2 in
  let seq = Ds_core.Two_pass_spanner.run ~ingest:`Sequential (Prng.create 9) ~n ~params stream in
  let par =
    Ds_core.Two_pass_spanner.run ~ingest:(`Parallel (pool ())) (Prng.create 9) ~n ~params stream
  in
  check_bool "identical spanner" true
    (Ds_graph.Graph.equal_edge_sets seq.Ds_core.Two_pass_spanner.spanner
       par.Ds_core.Two_pass_spanner.spanner);
  check_bool "identical accessed edges" true
    (List.sort compare seq.Ds_core.Two_pass_spanner.accessed_edges
    = List.sort compare par.Ds_core.Two_pass_spanner.accessed_edges);
  check_int "identical space accounting" seq.Ds_core.Two_pass_spanner.space_words
    par.Ds_core.Two_pass_spanner.space_words

(* -------------------- Kwise.to_range uniformity -------------------- *)

(* Regression for the modulo-bias fix: with [bound = 0x60000000] (~0.75 p) a
   plain [eval mod bound] sends every value in [bound, p) to [0, p - bound),
   inflating P(output < bound/2) from 0.5 to ~0.625 — over 26 sigma at this
   sample size. The rejection chain restores 0.5. *)
let test_to_range_unbiased () =
  let h = Kwise.create (Prng.create 77) ~k:6 in
  let bound = 0x60000000 in
  let keys = 20_000 in
  let below = ref 0 in
  for x = 0 to keys - 1 do
    let v = Kwise.to_range h x ~bound in
    check_bool "in range" true (0 <= v && v < bound);
    if v < bound / 2 then incr below
  done;
  let frac = float_of_int !below /. float_of_int keys in
  check_bool
    (Printf.sprintf "no modulo bias (frac below midpoint = %.4f)" frac)
    true
    (frac > 0.48 && frac < 0.52)

(* The power-of-two fast path must stay deterministic and balanced. *)
let test_to_range_pow2_balanced () =
  let h = Kwise.create (Prng.create 78) ~k:6 in
  let bound = 8 in
  let counts = Array.make bound 0 in
  for x = 0 to 7_999 do
    let v = Kwise.to_range h x ~bound in
    check_int "deterministic" v (Kwise.to_range h x ~bound);
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun b c ->
      check_bool
        (Printf.sprintf "bucket %d balanced (%d)" b c)
        true
        (abs (c - 1000) < 200))
    counts

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_one_sparse_batch;
      prop_sr_batch;
      prop_l0_batch;
      prop_agm_batch;
      prop_sr_sharded;
      prop_sr_sharded_zipf;
      prop_l0_sharded;
      prop_agm_sharded;
      prop_agm_sharded_star;
    ]

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "result order" `Quick test_pool_order;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "reuse" `Quick test_pool_reuse;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
          Alcotest.test_case "split partitions" `Quick test_split_partitions;
        ] );
      ( "deque",
        [
          Alcotest.test_case "owner drains exactly once" `Quick test_deque_owner_drains;
          Alcotest.test_case "lone thief steals exactly once" `Quick test_deque_steal_only;
          Alcotest.test_case "concurrent take+steal exactly once" `Quick
            test_deque_concurrent_exactly_once;
        ] );
      ( "plan",
        [
          Alcotest.test_case "invariants under adversarial chunks" `Quick
            test_plan_invariants;
          Alcotest.test_case "by_key routes chunks to owners" `Quick
            test_plan_by_key_routing;
          Alcotest.test_case "empty and tiny streams" `Quick test_sharded_edge_sizes;
        ] );
      ("linearity", qcheck_cases);
      ( "arena",
        [
          Alcotest.test_case "agm replica reuse stays exact" `Quick test_arena_reuse;
          Alcotest.test_case "generic linear arena stays exact" `Quick test_arena_linear;
        ] );
      ( "consumers",
        [
          Alcotest.test_case "cluster_sim parallel = sequential" `Quick
            test_cluster_sim_parallel_equal;
          Alcotest.test_case "two_pass parallel = sequential" `Quick
            test_two_pass_parallel_equal;
        ] );
      ( "hashing",
        [
          Alcotest.test_case "to_range unbiased" `Quick test_to_range_unbiased;
          Alcotest.test_case "to_range pow2 balanced" `Quick test_to_range_pow2_balanced;
        ] );
    ]
