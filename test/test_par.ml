(* Parallel ingestion engine: pool mechanics and the linearity contracts the
   engine rests on. The load-bearing properties are the serialize-equality
   ones — a sharded-parallel ingest followed by a merge must reproduce the
   sequential sketch state {e bit for bit}, for every linear sketch, every
   partition policy and every shard count. *)

open Ds_util
open Ds_sketch
open Ds_par

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* One pool shared by every test in this binary: domains are an OS resource
   and alcotest runs cases sequentially, so spawning per-case is pure waste. *)
let pool = lazy (Pool.create ~domains:3 ())
let () = at_exit (fun () -> if Lazy.is_val pool then Pool.shutdown (Lazy.force pool))
let pool () = Lazy.force pool

(* -------------------- Pool mechanics -------------------- *)

let test_pool_order () =
  let results = Pool.run (pool ()) (List.init 20 (fun i () -> i * i)) in
  check_bool "submission order" true (results = List.init 20 (fun i -> i * i))

let test_pool_exception () =
  let ran = Array.make 8 false in
  let thunks =
    List.init 8 (fun i () ->
        ran.(i) <- true;
        if i = 3 then failwith "boom")
  in
  (match Pool.run (pool ()) thunks with
  | _ -> Alcotest.fail "expected the job's exception to propagate"
  | exception Failure msg -> check_string "propagated exception" "boom" msg);
  check_bool "remaining jobs still ran" true (Array.for_all Fun.id ran)

let test_pool_reuse () =
  let p = pool () in
  let sum l = List.fold_left ( + ) 0 l in
  let a = sum (Pool.run p (List.init 10 (fun i () -> i))) in
  let b = sum (Pool.run p (List.init 10 (fun i () -> 2 * i))) in
  check_int "first batch" 45 a;
  check_int "second batch (same pool)" 90 b

let test_pool_shutdown () =
  let p = Pool.create ~domains:2 () in
  check_int "size" 2 (Pool.size p);
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  match Pool.submit p (fun () -> ()) with
  | () -> Alcotest.fail "submit after shutdown should raise"
  | exception Invalid_argument _ -> ()

let test_split_partitions () =
  let items = Array.init 103 Fun.id in
  List.iter
    (fun policy ->
      List.iter
        (fun shards ->
          let parts = Shard_ingest.split policy ~shards items in
          let all = Array.concat (Array.to_list parts) in
          Array.sort compare all;
          check_bool "every element exactly once" true (all = items))
        [ 1; 2; 3; 5 ])
    [ Shard_ingest.Chunked; Shard_ingest.Round_robin; Shard_ingest.By_key (fun x -> 7 * x) ]

(* -------------------- Serialize-equality properties -------------------- *)

let state_of write t =
  let sink = Wire.sink () in
  write t sink;
  Wire.contents sink

let dim = 200
let coord_gen = QCheck.(small_list (pair (int_bound (dim - 1)) (int_range (-3) 3)))

let policies = [ ("chunked", Shard_ingest.Chunked); ("round_robin", Shard_ingest.Round_robin) ]

(* Run [w] through a sharded-parallel ingest under every policy and shard
   count and demand byte-identical serialized state vs the sequential fold. *)
let sharded_matches ~create ~ingest ~update ~write w =
  let seq = create 11 in
  Array.iter (update seq) w;
  let expect = state_of write seq in
  List.for_all
    (fun (_, policy) ->
      let par = create 11 in
      ingest (pool ()) ~policy par w;
      state_of write par = expect)
    (("by_key", Shard_ingest.By_key (fun (i, _) -> i)) :: policies)

let prop_one_sparse_batch =
  QCheck.Test.make ~name:"one_sparse update_batch = fold of update" ~count:50 coord_gen
    (fun coords ->
      let w = Array.of_list coords in
      let a = One_sparse.create (Prng.create 7) ~dim in
      let b = One_sparse.create (Prng.create 7) ~dim in
      Array.iter (fun (index, delta) -> One_sparse.update a ~index ~delta) w;
      One_sparse.update_batch b w;
      state_of One_sparse.write a = state_of One_sparse.write b)

let sr_params = { Sparse_recovery.sparsity = 2; rows = 3; hash_degree = 6 }

let prop_sr_batch =
  QCheck.Test.make ~name:"sparse_recovery update_batch = fold of update" ~count:50 coord_gen
    (fun coords ->
      let w = Array.of_list coords in
      let a = Sparse_recovery.create (Prng.create 7) ~dim ~params:sr_params in
      let b = Sparse_recovery.create (Prng.create 7) ~dim ~params:sr_params in
      Array.iter (fun (index, delta) -> Sparse_recovery.update a ~index ~delta) w;
      Sparse_recovery.update_batch b w;
      state_of Sparse_recovery.write a = state_of Sparse_recovery.write b)

let prop_l0_batch =
  QCheck.Test.make ~name:"l0_sampler update_batch = fold of update" ~count:40 coord_gen
    (fun coords ->
      let w = Array.of_list coords in
      let a = L0_sampler.create (Prng.create 7) ~dim ~params:L0_sampler.default_params in
      let b = L0_sampler.create (Prng.create 7) ~dim ~params:L0_sampler.default_params in
      Array.iter (fun (index, delta) -> L0_sampler.update a ~index ~delta) w;
      L0_sampler.update_batch b w;
      state_of L0_sampler.write a = state_of L0_sampler.write b)

let prop_sr_sharded =
  QCheck.Test.make ~name:"sparse_recovery sharded+merge = sequential (all policies)"
    ~count:20 coord_gen (fun coords ->
      sharded_matches (Array.of_list coords)
        ~create:(fun seed -> Sparse_recovery.create (Prng.create seed) ~dim ~params:sr_params)
        ~ingest:(fun p ~policy sk w -> Shard_ingest.sparse_recovery p ~policy sk w)
        ~update:(fun sk (index, delta) -> Sparse_recovery.update sk ~index ~delta)
        ~write:Sparse_recovery.write)

let prop_l0_sharded =
  QCheck.Test.make ~name:"l0_sampler sharded+merge = sequential (all policies)" ~count:15
    coord_gen (fun coords ->
      sharded_matches (Array.of_list coords)
        ~create:(fun seed ->
          L0_sampler.create (Prng.create seed) ~dim ~params:L0_sampler.default_params)
        ~ingest:(fun p ~policy sk w -> Shard_ingest.l0_sampler p ~policy sk w)
        ~update:(fun sk (index, delta) -> L0_sampler.update sk ~index ~delta)
        ~write:L0_sampler.write)

(* Edge streams for the AGM properties. *)
let agm_n = 24

let edge_gen =
  QCheck.(
    small_list (triple (int_bound (agm_n - 1)) (int_bound (agm_n - 2)) bool)
    |> map (fun l ->
           List.map
             (fun (u, dv, ins) ->
               let v = (u + 1 + dv) mod agm_n in
               if ins then Ds_stream.Update.insert u v else Ds_stream.Update.delete u v)
             l))

let agm_create seed =
  Ds_agm.Agm_sketch.create (Prng.create seed) ~n:agm_n
    ~params:(Ds_agm.Agm_sketch.default_params ~n:agm_n)

let prop_agm_batch =
  QCheck.Test.make ~name:"agm update_batch = fold of update" ~count:15 edge_gen (fun edges ->
      let module U = Ds_stream.Update in
      let w = Array.of_list edges in
      let a = agm_create 7 and b = agm_create 7 in
      Array.iter (fun (e : U.t) -> Ds_agm.Agm_sketch.update a ~u:e.U.u ~v:e.U.v ~delta:(U.delta e)) w;
      Ds_agm.Agm_sketch.update_batch b w;
      Ds_agm.Agm_sketch.serialize a = Ds_agm.Agm_sketch.serialize b)

let prop_agm_sharded =
  QCheck.Test.make ~name:"agm sharded+merge = sequential (all policies)" ~count:10 edge_gen
    (fun edges ->
      let w = Array.of_list edges in
      let seq = agm_create 11 in
      Ds_agm.Agm_sketch.update_batch seq w;
      let expect = Ds_agm.Agm_sketch.serialize seq in
      List.for_all
        (fun (_, policy) ->
          let par = agm_create 11 in
          Shard_ingest.agm (pool ()) ~policy par w;
          Ds_agm.Agm_sketch.serialize par = expect)
        (("by_vertex", Shard_ingest.by_vertex) :: policies))

(* -------------------- Consumers -------------------- *)

(* A valid dynamic stream: deletions only target currently-live edges, so the
   offline ground-truth graph the consumers verify against is well-defined. *)
let random_stream seed ~n ~updates =
  let rng = Prng.create seed in
  let live = ref [] in
  let nlive = ref 0 in
  Array.init updates (fun _ ->
      if !nlive > 0 && Prng.int rng 5 = 0 then begin
        let k = Prng.int rng !nlive in
        let u, v = List.nth !live k in
        live := List.filteri (fun i _ -> i <> k) !live;
        decr nlive;
        Ds_stream.Update.delete u v
      end
      else begin
        let u = Prng.int rng n in
        let v = (u + 1 + Prng.int rng (n - 1)) mod n in
        live := (u, v) :: !live;
        incr nlive;
        Ds_stream.Update.insert u v
      end)

let test_cluster_sim_parallel_equal () =
  let stream = random_stream 31 ~n:48 ~updates:600 in
  List.iter
    (fun partition ->
      let seq =
        Ds_sim.Cluster_sim.run ~mode:`Sequential (Prng.create 5) ~n:48 ~servers:4 ~partition
          stream
      in
      let par =
        Ds_sim.Cluster_sim.run ~mode:(`Parallel (pool ())) (Prng.create 5) ~n:48 ~servers:4
          ~partition stream
      in
      check_bool "parallel report identical" true (seq = par);
      check_bool "forest verified" true seq.Ds_sim.Cluster_sim.forest_correct)
    [ Ds_sim.Cluster_sim.Round_robin; Ds_sim.Cluster_sim.By_vertex ]

let test_two_pass_parallel_equal () =
  let n = 32 in
  let stream = random_stream 33 ~n ~updates:400 in
  let params = Ds_core.Two_pass_spanner.default_params ~k:2 in
  let seq = Ds_core.Two_pass_spanner.run ~ingest:`Sequential (Prng.create 9) ~n ~params stream in
  let par =
    Ds_core.Two_pass_spanner.run ~ingest:(`Parallel (pool ())) (Prng.create 9) ~n ~params stream
  in
  check_bool "identical spanner" true
    (Ds_graph.Graph.equal_edge_sets seq.Ds_core.Two_pass_spanner.spanner
       par.Ds_core.Two_pass_spanner.spanner);
  check_bool "identical accessed edges" true
    (List.sort compare seq.Ds_core.Two_pass_spanner.accessed_edges
    = List.sort compare par.Ds_core.Two_pass_spanner.accessed_edges);
  check_int "identical space accounting" seq.Ds_core.Two_pass_spanner.space_words
    par.Ds_core.Two_pass_spanner.space_words

(* -------------------- Kwise.to_range uniformity -------------------- *)

(* Regression for the modulo-bias fix: with [bound = 0x60000000] (~0.75 p) a
   plain [eval mod bound] sends every value in [bound, p) to [0, p - bound),
   inflating P(output < bound/2) from 0.5 to ~0.625 — over 26 sigma at this
   sample size. The rejection chain restores 0.5. *)
let test_to_range_unbiased () =
  let h = Kwise.create (Prng.create 77) ~k:6 in
  let bound = 0x60000000 in
  let keys = 20_000 in
  let below = ref 0 in
  for x = 0 to keys - 1 do
    let v = Kwise.to_range h x ~bound in
    check_bool "in range" true (0 <= v && v < bound);
    if v < bound / 2 then incr below
  done;
  let frac = float_of_int !below /. float_of_int keys in
  check_bool
    (Printf.sprintf "no modulo bias (frac below midpoint = %.4f)" frac)
    true
    (frac > 0.48 && frac < 0.52)

(* The power-of-two fast path must stay deterministic and balanced. *)
let test_to_range_pow2_balanced () =
  let h = Kwise.create (Prng.create 78) ~k:6 in
  let bound = 8 in
  let counts = Array.make bound 0 in
  for x = 0 to 7_999 do
    let v = Kwise.to_range h x ~bound in
    check_int "deterministic" v (Kwise.to_range h x ~bound);
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun b c ->
      check_bool
        (Printf.sprintf "bucket %d balanced (%d)" b c)
        true
        (abs (c - 1000) < 200))
    counts

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_one_sparse_batch;
      prop_sr_batch;
      prop_l0_batch;
      prop_agm_batch;
      prop_sr_sharded;
      prop_l0_sharded;
      prop_agm_sharded;
    ]

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "result order" `Quick test_pool_order;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "reuse" `Quick test_pool_reuse;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
          Alcotest.test_case "split partitions" `Quick test_split_partitions;
        ] );
      ("linearity", qcheck_cases);
      ( "consumers",
        [
          Alcotest.test_case "cluster_sim parallel = sequential" `Quick
            test_cluster_sim_parallel_equal;
          Alcotest.test_case "two_pass parallel = sequential" `Quick
            test_two_pass_parallel_equal;
        ] );
      ( "hashing",
        [
          Alcotest.test_case "to_range unbiased" `Quick test_to_range_unbiased;
          Alcotest.test_case "to_range pow2 balanced" `Quick test_to_range_pow2_balanced;
        ] );
    ]
