(* dynospan: command-line driver for the dynamic-stream spanner/sparsifier
   library. Generates a seeded workload graph, turns it into a dynamic
   stream (with optional churn), runs the chosen algorithm, and prints a
   verification report against the offline ground truth. *)

open Ds_util
open Ds_graph
open Ds_stream
open Ds_core
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Workload construction                                               *)
(* ------------------------------------------------------------------ *)

let make_graph rng ~family ~n ~p =
  match family with
  | "gnp" -> Gen.connected_gnp rng ~n ~p
  | "path" -> Gen.path n
  | "cycle" -> Gen.cycle n
  | "grid" ->
      let side = max 2 (int_of_float (sqrt (float_of_int n))) in
      Gen.grid side side
  | "clique" -> Gen.complete n
  | "barbell" -> Gen.barbell (max 2 (n / 2))
  | "pa" -> Gen.preferential_attachment rng ~n ~m:(max 1 (int_of_float (p *. float_of_int n)))
  | other -> invalid_arg (Printf.sprintf "unknown graph family %S" other)

let make_stream rng ~decoys g =
  if decoys = 0 then Stream_gen.insert_only rng g
  else Stream_gen.with_churn rng ~decoys g

(* Shared command-line arguments. *)
let n_arg =
  Arg.(value & opt int 128 & info [ "n" ] ~docv:"N" ~doc:"Number of vertices.")

let family_arg =
  Arg.(
    value
    & opt string "gnp"
    & info [ "graph" ] ~docv:"FAMILY"
        ~doc:"Graph family: gnp, path, cycle, grid, clique, barbell, pa.")

let p_arg =
  Arg.(value & opt float 0.05 & info [ "p" ] ~docv:"P" ~doc:"Edge density (gnp) or m/n (pa).")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Master PRNG seed.")

let decoys_arg =
  Arg.(
    value
    & opt int 500
    & info [ "decoys" ] ~docv:"D"
        ~doc:"Decoy edges inserted and later deleted (stream churn). 0 = insert-only.")

(* Telemetry flags, shared by every subcommand.  Off by default so the
   default output of every command (which the chaos and checkpoint CI
   smoke tests diff byte-for-byte) is unchanged. *)
let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Enable the telemetry registry (counters, spans, space ledger) and print a summary \
           plus a JSON report after the run.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Enable telemetry and write the combined JSON report (metrics + spans + space \
           ledger) to $(docv). Implies $(b,--metrics).")

let with_obs ~metrics ~metrics_out f =
  let on = metrics || metrics_out <> None in
  if on then Ds_obs.Export.enable ();
  let r = f () in
  if on then begin
    Fmt.pr "%a" Ds_obs.Export.pp_summary ();
    match metrics_out with
    | Some path ->
        Ds_obs.Export.write_report ~path;
        Fmt.pr "metrics: wrote %s@." path
    | None -> print_string (Ds_obs.Export.report_json ())
  end;
  r

let setup ~family ~n ~p ~seed ~decoys =
  let rng = Prng.create seed in
  let g = make_graph (Prng.split rng) ~family ~n ~p in
  let stream = make_stream (Prng.split rng) ~decoys g in
  let stats = Stream_stats.create (Prng.split rng) ~n:(Graph.n g) in
  Array.iter (Stream_stats.update stats) stream;
  Fmt.pr "stream: %a@." Stream_stats.pp_summary (Stream_stats.summary stats);
  (rng, g, stream)

let report_spanner ~name ~g ~spanner ~space_words ~bound =
  let s = Stretch.multiplicative ~base:g ~spanner in
  Fmt.pr "== %s ==@." name;
  Fmt.pr "graph: n=%d edges=%d@." (Graph.n g) (Graph.num_edges g);
  Fmt.pr "spanner: edges=%d (%.1f%% of input)@." (Graph.num_edges spanner)
    (100.0 *. float_of_int (Graph.num_edges spanner) /. float_of_int (max 1 (Graph.num_edges g)));
  Fmt.pr "stretch: max=%.2f mean=%.2f p95=%.2f (bound %.0f, violations %d)@." s.Stretch.max
    s.Stretch.mean s.Stretch.p95 bound s.Stretch.violations;
  Fmt.pr "space: %a (%d words)@." Ds_util.Space.pp_words space_words space_words;
  Fmt.pr "subgraph-of-input: %b@." (Graph.is_subgraph ~sub:spanner ~super:g)

(* Canonical digest of a spanner's edge set: FNV-1a-64 over the sorted edge
   list. Used by the checkpoint/resume smoke test to compare a resumed run
   to an uninterrupted one across processes. *)
let spanner_hash spanner =
  let edges = ref [] in
  Graph.iter_edges spanner (fun u v -> edges := (min u v, max u v) :: !edges);
  let buf = Buffer.create 1024 in
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "%d,%d;" u v))
    (List.sort compare !edges);
  Wire.fnv1a64 (Buffer.contents buf)

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  data

(* ------------------------------------------------------------------ *)
(* Sub-commands                                                        *)
(* ------------------------------------------------------------------ *)

let report_two_pass ~k ~g (r : Two_pass_spanner.result) =
  report_spanner
    ~name:(Printf.sprintf "two-pass 2^%d-spanner (Theorem 1)" k)
    ~g ~spanner:r.Two_pass_spanner.spanner ~space_words:r.Two_pass_spanner.space_words
    ~bound:(float_of_int (1 lsl k));
  let d = r.Two_pass_spanner.diagnostics in
  Fmt.pr "diagnostics: terminals/level=%a p1-fails=%d table-fails=%d payload-fails=%d@."
    Fmt.(Dump.array int)
    d.Two_pass_spanner.terminals_per_level d.Two_pass_spanner.pass1_decode_failures
    d.Two_pass_spanner.table_decode_failures d.Two_pass_spanner.payload_decode_failures;
  Fmt.pr "spanner-hash: %016Lx@." (spanner_hash r.Two_pass_spanner.spanner)

let k_spanner_arg =
  Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"Stretch exponent (2^k).")

let spanner_cmd =
  let run family n p seed decoys k metrics metrics_out =
    with_obs ~metrics ~metrics_out @@ fun () ->
    let rng, g, stream = setup ~family ~n ~p ~seed ~decoys in
    let r =
      Two_pass_spanner.run (Prng.split rng) ~n:(Graph.n g)
        ~params:(Two_pass_spanner.default_params ~k)
        stream
    in
    report_two_pass ~k ~g r
  in
  Cmd.v
    (Cmd.info "spanner" ~doc:"Two-pass 2^k multiplicative spanner (Theorem 1).")
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ seed_arg $ decoys_arg $ k_spanner_arg
      $ metrics_arg $ metrics_out_arg)

(* checkpoint/resume: the same workload is re-derived from the same CLI
   arguments (the whole pipeline is seed-deterministic), so the two
   processes agree on the stream and the PRNG chain; only the pass-1
   counters cross the process boundary, in the checkpoint file. *)

let file_arg =
  Arg.(
    value
    & opt string "dynospan.ckpt"
    & info [ "file" ] ~docv:"PATH" ~doc:"Checkpoint file path.")

let checkpoint_cmd =
  let run family n p seed decoys k file metrics metrics_out =
    with_obs ~metrics ~metrics_out @@ fun () ->
    let rng, g, stream = setup ~family ~n ~p ~seed ~decoys in
    let ck =
      Two_pass_spanner.checkpoint (Prng.split rng) ~n:(Graph.n g)
        ~params:(Two_pass_spanner.default_params ~k)
        stream
    in
    write_file file ck;
    Fmt.pr "checkpoint: pass 1 done, %d bytes -> %s@." (String.length ck) file;
    Fmt.pr "resume with: dynospan resume --graph %s -n %d -p %g --seed %d --decoys %d -k %d --file %s@."
      family n p seed decoys k file
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:
         "Run pass 1 of the two-pass spanner and serialise the pass boundary to a file. Resume \
          in a fresh process with the same arguments.")
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ seed_arg $ decoys_arg $ k_spanner_arg $ file_arg
      $ metrics_arg $ metrics_out_arg)

(* A damaged checkpoint is an operational condition, not a crash: print one
   diagnostic line on stderr and exit 2, never an OCaml backtrace. *)
let die_bad_checkpoint file e =
  Fmt.epr "dynospan: bad checkpoint %s: %a@." file Two_pass_spanner.pp_checkpoint_error e;
  exit 2

let read_checkpoint_file file =
  try read_file file
  with Sys_error msg ->
    Fmt.epr "dynospan: cannot read checkpoint: %s@." msg;
    exit 2

let resume_cmd =
  let run family n p seed decoys k file recover metrics metrics_out =
    with_obs ~metrics ~metrics_out @@ fun () ->
    let rng, g, stream = setup ~family ~n ~p ~seed ~decoys in
    let params = Two_pass_spanner.default_params ~k in
    let checkpoint = read_checkpoint_file file in
    let r =
      if recover then begin
        let r, verdict =
          Two_pass_spanner.resume_or_restart (Prng.split rng) ~n:(Graph.n g) ~params
            ~checkpoint stream
        in
        (match verdict with
        | `Resumed -> Fmt.pr "resumed from %s@." file
        | `Recomputed e ->
            Fmt.pr "checkpoint rejected (%a); recomputed pass 1 from the stream@."
              Two_pass_spanner.pp_checkpoint_error e);
        r
      end
      else
        match
          Two_pass_spanner.resume_result (Prng.split rng) ~n:(Graph.n g) ~params ~checkpoint
            stream
        with
        | Ok r ->
            Fmt.pr "resumed from %s@." file;
            r
        | Error e -> die_bad_checkpoint file e
    in
    report_two_pass ~k ~g r
  in
  let recover_arg =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:
            "If the checkpoint is corrupt or mismatched, recompute pass 1 from the stream \
             instead of failing (the result is bit-identical to an uninterrupted run).")
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Finish a checkpointed two-pass spanner run: rebuild the seed-derived structure, load \
          the pass-1 counters, run pass 2. Must be invoked with the same workload arguments as \
          the checkpoint. The resulting spanner is bit-identical to an uninterrupted run. \
          Exits with code 2 on a corrupt, truncated or mismatched checkpoint (unless \
          $(b,--recover) is given).")
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ seed_arg $ decoys_arg $ k_spanner_arg $ file_arg
      $ recover_arg $ metrics_arg $ metrics_out_arg)

let chaos_cmd =
  let run family n p seed decoys servers rate fault_seed no_heal metrics metrics_out =
    with_obs ~metrics ~metrics_out @@ fun () ->
    let rng, g, stream = setup ~family ~n ~p ~seed ~decoys in
    let plan =
      if rate <= 0.0 then Ds_fault.Fault_plan.none
      else Ds_fault.Fault_plan.random ~seed:fault_seed ~rate
    in
    let r =
      Ds_sim.Cluster_sim.run_supervised ~allow_reingest:(not no_heal) ~plan (Prng.split rng)
        ~n:(Graph.n g) ~servers ~partition:Ds_sim.Cluster_sim.Round_robin stream
    in
    Fmt.pr "== supervised cluster run under deterministic fault injection ==@.";
    Fmt.pr "plan: fault-seed=%d rate=%.2f heal=%b servers=%d@." fault_seed rate (not no_heal)
      servers;
    Fmt.pr "%a" Ds_sim.Cluster_sim.pp_supervised_report r;
    if not r.Ds_sim.Cluster_sim.sup_forest_correct then exit 1
  in
  let servers_arg =
    Arg.(value & opt int 4 & info [ "servers" ] ~docv:"S" ~doc:"Number of simulated servers.")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.1
      & info [ "rate" ] ~docv:"R" ~doc:"Per-send-attempt fault probability (0 disables).")
  in
  let fault_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "fault-seed" ] ~docv:"FS"
          ~doc:"Seed of the fault plan; equal seeds replay identical faults.")
  in
  let no_heal_arg =
    Arg.(
      value & flag
      & info [ "no-heal" ]
          ~doc:
            "Forbid re-ingesting failed shards; the coordinator degrades to quorum decoding \
             and reports the certified failure probability instead.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the distributed sketching protocol through a seeded fault plan (crashes, drops, \
          corruption, truncation, duplicates, delays) with a self-healing coordinator. Fully \
          deterministic: the same seeds print the same report. Exits 1 if the decoded forest \
          is wrong.")
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ seed_arg $ decoys_arg $ servers_arg $ rate_arg
      $ fault_seed_arg $ no_heal_arg $ metrics_arg $ metrics_out_arg)

let additive_cmd =
  let run family n p seed decoys d metrics metrics_out =
    with_obs ~metrics ~metrics_out @@ fun () ->
    let rng, g, stream = setup ~family ~n ~p ~seed ~decoys in
    let r =
      Additive_spanner.run (Prng.split rng) ~n:(Graph.n g)
        ~params:(Additive_spanner.default_params ~n:(Graph.n g) ~d)
        stream
    in
    let s = Stretch.additive ~base:g ~spanner:r.Additive_spanner.spanner () in
    Fmt.pr "== single-pass n/d-additive spanner (Theorem 3), d=%d ==@." d;
    Fmt.pr "graph: n=%d edges=%d@." (Graph.n g) (Graph.num_edges g);
    Fmt.pr "spanner: edges=%d@." (Graph.num_edges r.Additive_spanner.spanner);
    Fmt.pr "additive surplus: max=%.0f mean=%.2f (bound %.0f, violations %d)@." s.Stretch.max
      s.Stretch.mean
      (Additive_spanner.distortion_bound ~n:(Graph.n g) ~d)
      s.Stretch.violations;
    Fmt.pr "space: %a@." Ds_util.Space.pp_words r.Additive_spanner.space_words;
    let dg = r.Additive_spanner.diagnostics in
    Fmt.pr "diagnostics: centers=%d low=%d high=%d misclassified=%d orphan=%d@."
      dg.Additive_spanner.centers dg.Additive_spanner.low_degree dg.Additive_spanner.high_degree
      dg.Additive_spanner.degree_misclassified dg.Additive_spanner.orphan_high
  in
  let d_arg = Arg.(value & opt int 4 & info [ "d" ] ~docv:"D" ~doc:"Space/distortion knob.") in
  Cmd.v
    (Cmd.info "additive" ~doc:"Single-pass n/d-additive spanner (Theorem 3).")
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ seed_arg $ decoys_arg $ d_arg $ metrics_arg
      $ metrics_out_arg)

let sparsify_cmd =
  let run family n p seed decoys k eps rounds metrics metrics_out =
    with_obs ~metrics ~metrics_out @@ fun () ->
    let rng, g, stream = setup ~family ~n ~p ~seed ~decoys in
    let n = Graph.n g in
    let prm = Sparsify.default_params ~k ~eps ~n in
    let prm = if rounds = 0 then prm else { prm with Sparsify.z_rounds = rounds } in
    let r = Sparsify.run (Prng.split rng) ~n ~params:prm stream in
    let wg = Weighted_graph.of_graph g in
    let b = Ds_linalg.Spectral.pencil_bounds ~base:wg ~candidate:r.Sparsify.sparsifier in
    Fmt.pr "== two-pass spectral sparsifier (Corollary 2), eps=%.2f Z=%d ==@." eps
      r.Sparsify.rounds;
    Fmt.pr "graph: n=%d edges=%d@." n (Graph.num_edges g);
    Fmt.pr "sparsifier: edges=%d@." (Weighted_graph.num_edges r.Sparsify.sparsifier);
    Fmt.pr "pencil eigenvalue bounds: [%.3f, %.3f] (target [%.2f, %.2f])@."
      b.Ds_linalg.Spectral.lambda_min b.Ds_linalg.Spectral.lambda_max (1.0 -. eps) (1.0 +. eps);
    Fmt.pr "kernel leak: %.2g@." b.Ds_linalg.Spectral.kernel_leak;
    Fmt.pr "space: %a@." Ds_util.Space.pp_words r.Sparsify.space_words
  in
  let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"Oracle stretch exponent.") in
  let eps_arg = Arg.(value & opt float 0.5 & info [ "eps" ] ~docv:"EPS" ~doc:"Target accuracy.") in
  let rounds_arg =
    Arg.(value & opt int 0 & info [ "rounds" ] ~docv:"Z" ~doc:"SAMPLE rounds (0 = default).")
  in
  Cmd.v
    (Cmd.info "sparsify" ~doc:"Two-pass spectral sparsifier (Corollary 2).")
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ seed_arg $ decoys_arg $ k_arg $ eps_arg
      $ rounds_arg $ metrics_arg $ metrics_out_arg)

let sparsify1p_cmd =
  let run family n p seed decoys eps metrics metrics_out =
    with_obs ~metrics ~metrics_out @@ fun () ->
    let rng, g, stream = setup ~family ~n ~p ~seed ~decoys in
    let n = Graph.n g in
    let prm = Ds_sparsify.Sparsify1p.default_params ~n ~eps in
    let r = Ds_sparsify.Sparsify1p.run (Prng.split rng) ~n ~params:prm ~eps stream in
    let wg = Weighted_graph.of_graph g in
    let b =
      Ds_linalg.Spectral.pencil_bounds ~base:wg
        ~candidate:r.Ds_sparsify.Sparsify1p.sparsifier
    in
    Fmt.pr "== single-pass spectral sparsifier (KLMMS chain), eps=%.2f ==@." eps;
    Fmt.pr "graph: n=%d edges=%d@." n (Graph.num_edges g);
    Fmt.pr "chain: steps=%d final-size=%d@." r.Ds_sparsify.Sparsify1p.chain_steps
      (Weighted_graph.num_edges r.Ds_sparsify.Sparsify1p.sparsifier);
    Fmt.pr "pencil eigenvalue bounds: [%.3f, %.3f] (target [%.2f, %.2f])@."
      b.Ds_linalg.Spectral.lambda_min b.Ds_linalg.Spectral.lambda_max (1.0 -. eps) (1.0 +. eps);
    Fmt.pr "kernel leak: %.2g@." b.Ds_linalg.Spectral.kernel_leak;
    Fmt.pr "space: %a (bound %a)@." Ds_util.Space.pp_words
      r.Ds_sparsify.Sparsify1p.space_words Ds_util.Space.pp_words
      (int_of_float (Ds_sparsify.Sparsify1p.space_bound ~n ~eps));
    (* The subcommand is its own acceptance gate: outside the (1 +- eps)
       window it fails loudly so the CI smoke test is a real check. *)
    if
      b.Ds_linalg.Spectral.lambda_min < 1.0 -. eps
      || b.Ds_linalg.Spectral.lambda_max > 1.0 +. eps
      || b.Ds_linalg.Spectral.kernel_leak > 1e-6
    then begin
      Fmt.pr "FAIL: bounds outside target window@.";
      exit 1
    end
  in
  let eps_arg = Arg.(value & opt float 0.5 & info [ "eps" ] ~docv:"EPS" ~doc:"Target accuracy.") in
  Cmd.v
    (Cmd.info "sparsify1p"
       ~doc:
         "Single-pass (1±eps) spectral sparsifier (KLMMS chain over one linear sketch). Exits 1 \
          if the exact pencil bounds leave [1-eps, 1+eps].")
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ seed_arg $ decoys_arg $ eps_arg $ metrics_arg
      $ metrics_out_arg)

let forest_cmd =
  let run family n p seed decoys metrics metrics_out =
    with_obs ~metrics ~metrics_out @@ fun () ->
    let rng, g, stream = setup ~family ~n ~p ~seed ~decoys in
    let n = Graph.n g in
    let t =
      Ds_agm.Agm_sketch.create (Prng.split rng) ~n ~params:(Ds_agm.Agm_sketch.default_params ~n)
    in
    Array.iter
      (fun u -> Ds_agm.Agm_sketch.update t ~u:u.Update.u ~v:u.Update.v ~delta:(Update.delta u))
      stream;
    let forest = Ds_agm.Agm_sketch.spanning_forest t in
    Fmt.pr "== AGM spanning forest (Theorem 10) ==@.";
    Fmt.pr "graph: n=%d edges=%d components=%d@." n (Graph.num_edges g) (Components.count g);
    Fmt.pr "forest: %d edges (expected %d)@." (List.length forest) (n - Components.count g);
    Fmt.pr "space: %a@." Ds_util.Space.pp_words (Ds_agm.Agm_sketch.space_in_words t);
    let all_real = List.for_all (fun (u, v) -> Graph.mem_edge g u v) forest in
    Fmt.pr "all forest edges real: %b@." all_real
  in
  Cmd.v
    (Cmd.info "forest" ~doc:"AGM spanning forest from linear sketches.")
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ seed_arg $ decoys_arg $ metrics_arg
      $ metrics_out_arg)

let kconn_cmd =
  let run family n p seed decoys k metrics metrics_out =
    with_obs ~metrics ~metrics_out @@ fun () ->
    let rng, g, stream = setup ~family ~n ~p ~seed ~decoys in
    let n = Graph.n g in
    let t =
      Ds_agm.K_connectivity.create (Prng.split rng) ~n ~k
        ~params:(Ds_agm.Agm_sketch.default_params ~n)
    in
    Array.iter
      (fun u ->
        Ds_agm.K_connectivity.update t ~u:u.Update.u ~v:u.Update.v ~delta:(Update.delta u))
      stream;
    let cert = Ds_agm.K_connectivity.certificate t in
    Fmt.pr "== k-edge-connectivity certificate ([AGM12a]), k=%d ==@." k;
    Fmt.pr "graph: n=%d edges=%d exact-connectivity=%d@." n (Graph.num_edges g)
      (Min_cut.edge_connectivity g);
    Fmt.pr "certificate: %d edges, connectivity %d@." (Graph.num_edges cert)
      (Min_cut.edge_connectivity cert);
    Fmt.pr "k-connected (sketch verdict): %b@." (Min_cut.edge_connectivity cert >= k);
    Fmt.pr "space: %a@." Ds_util.Space.pp_words (Ds_agm.K_connectivity.space_in_words t)
  in
  let k_arg = Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"Connectivity to certify.") in
  Cmd.v
    (Cmd.info "kconn" ~doc:"k-edge-connectivity certificate from sketches.")
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ seed_arg $ decoys_arg $ k_arg $ metrics_arg
      $ metrics_out_arg)

let mst_cmd =
  let run family n p seed gamma metrics metrics_out =
    with_obs ~metrics ~metrics_out @@ fun () ->
    let rng = Prng.create seed in
    let g = make_graph (Prng.split rng) ~family ~n ~p in
    let n = Graph.n g in
    let wrng = Prng.split rng in
    let wg = Weighted_graph.create n in
    Graph.iter_edges g (fun u v -> Weighted_graph.add_edge wg u v (1.0 +. Prng.float wrng 31.0));
    let t =
      Ds_agm.Mst.create (Prng.split rng) ~n
        ~params:
          {
            Ds_agm.Mst.gamma;
            w_min = 1.0;
            w_max = 32.0;
            sketch = Ds_agm.Agm_sketch.default_params ~n;
          }
    in
    Weighted_graph.iter_edges wg (fun u v w -> Ds_agm.Mst.update t ~u ~v ~weight:w ~delta:1);
    let forest = Ds_agm.Mst.extract t in
    let exact = Mst_offline.kruskal wg in
    Fmt.pr "== (1+gamma)-approximate MST from sketches ([AGM12a]), gamma=%.2f ==@." gamma;
    Fmt.pr "graph: n=%d edges=%d@." n (Weighted_graph.num_edges wg);
    Fmt.pr "sketch forest: %d edges, rounded weight %.1f@." (List.length forest)
      (Ds_agm.Mst.forest_weight forest);
    Fmt.pr "exact MST: %d edges, weight %.1f@." (List.length exact)
      (Mst_offline.forest_weight exact);
    Fmt.pr "space: %a@." Ds_util.Space.pp_words (Ds_agm.Mst.space_in_words t)
  in
  let gamma_arg =
    Arg.(value & opt float 0.25 & info [ "gamma" ] ~docv:"G" ~doc:"Weight-class rounding.")
  in
  Cmd.v
    (Cmd.info "mst" ~doc:"Approximate minimum spanning forest from sketches.")
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ seed_arg $ gamma_arg $ metrics_arg
      $ metrics_out_arg)

let bipartite_cmd =
  let run family n p seed decoys metrics metrics_out =
    with_obs ~metrics ~metrics_out @@ fun () ->
    let rng, g, stream = setup ~family ~n ~p ~seed ~decoys in
    let n = Graph.n g in
    let t =
      Ds_agm.Bipartiteness.create (Prng.split rng) ~n ~params:(Ds_agm.Agm_sketch.default_params ~n)
    in
    Array.iter
      (fun u ->
        Ds_agm.Bipartiteness.update t ~u:u.Update.u ~v:u.Update.v ~delta:(Update.delta u))
      stream;
    let v = Ds_agm.Bipartiteness.test t in
    Fmt.pr "== bipartiteness via double cover ([AGM12a]) ==@.";
    Fmt.pr "graph: n=%d edges=%d@." n (Graph.num_edges g);
    Fmt.pr "components=%d bipartite-components=%d is-bipartite=%b@." v.Ds_agm.Bipartiteness.components
      v.Ds_agm.Bipartiteness.bipartite_components v.Ds_agm.Bipartiteness.is_bipartite;
    Fmt.pr "space: %a@." Ds_util.Space.pp_words (Ds_agm.Bipartiteness.space_in_words t)
  in
  Cmd.v
    (Cmd.info "bipartite" ~doc:"Bipartiteness test from sketches.")
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ seed_arg $ decoys_arg $ metrics_arg
      $ metrics_out_arg)

let offline_cmd =
  let run family n p seed algo k metrics metrics_out =
    with_obs ~metrics ~metrics_out @@ fun () ->
    let rng = Prng.create seed in
    let g = make_graph (Prng.split rng) ~family ~n ~p in
    let spanner, name, bound =
      match algo with
      | "basic" ->
          ( (Basic_spanner.run (Prng.split rng) ~k g).Basic_spanner.spanner,
            Printf.sprintf "offline basic 2^%d-spanner (Section 3.1)" k,
            float_of_int (1 lsl k) )
      | "bs" ->
          ( Baswana_sen.run (Prng.split rng) ~k g,
            Printf.sprintf "Baswana-Sen (2k-1)-spanner, k=%d" k,
            float_of_int ((2 * k) - 1) )
      | "greedy" ->
          ( Greedy_spanner.run ~k g,
            Printf.sprintf "greedy (2k-1)-spanner, k=%d" k,
            float_of_int ((2 * k) - 1) )
      | other -> invalid_arg (Printf.sprintf "unknown offline algorithm %S" other)
    in
    report_spanner ~name ~g ~spanner ~space_words:0 ~bound
  in
  let algo_arg =
    Arg.(value & opt string "basic" & info [ "algo" ] ~docv:"A" ~doc:"basic, bs, or greedy.")
  in
  let k_arg = Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"Stretch parameter.") in
  Cmd.v
    (Cmd.info "offline" ~doc:"Offline reference spanners (baselines).")
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ seed_arg $ algo_arg $ k_arg $ metrics_arg
      $ metrics_out_arg)

(* Replay a seeded workload with span tracing on and export the spans.
   Replay, not attach: the whole pipeline is seed-deterministic, so
   re-running the same arguments reproduces the same work (up to wall
   clock) and tracing needs no always-on recording in the algorithms. *)
let trace_cmd =
  let run family n p seed decoys algo k out =
    Ds_obs.Export.enable ();
    let rng, g, stream = setup ~family ~n ~p ~seed ~decoys in
    let n = Graph.n g in
    (match algo with
    | "spanner" ->
        ignore
          (Two_pass_spanner.run (Prng.split rng) ~n
             ~params:(Two_pass_spanner.default_params ~k)
             stream)
    | "additive" ->
        ignore
          (Additive_spanner.run (Prng.split rng) ~n
             ~params:(Additive_spanner.default_params ~n ~d:k)
             stream)
    | "cluster" ->
        ignore
          (Ds_sim.Cluster_sim.run (Prng.split rng) ~n ~servers:4
             ~partition:Ds_sim.Cluster_sim.Round_robin stream)
    | "supervised" ->
        ignore
          (Ds_sim.Cluster_sim.run_supervised ~plan:Ds_fault.Fault_plan.none (Prng.split rng)
             ~n ~servers:4 ~partition:Ds_sim.Cluster_sim.Round_robin stream)
    | other -> invalid_arg (Printf.sprintf "unknown trace workload %S" other));
    let jsonl = Ds_obs.Trace.to_jsonl () in
    match out with
    | Some path ->
        write_file path jsonl;
        Fmt.pr "trace: %d spans -> %s@." (List.length (Ds_obs.Trace.spans ())) path
    | None -> print_string jsonl
  in
  let algo_arg =
    Arg.(
      value & opt string "spanner"
      & info [ "algo" ] ~docv:"A"
          ~doc:"Workload to replay: spanner, additive, cluster, or supervised.")
  in
  let k_arg =
    Arg.(
      value & opt int 3
      & info [ "k" ] ~docv:"K" ~doc:"Stretch exponent (spanner) or d (additive).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write span JSON-lines to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay a seeded workload with span tracing enabled and export the recorded spans as \
          JSON-lines (one span object per line, monotonic-clock timestamps).")
    Term.(
      const run $ family_arg $ n_arg $ p_arg $ seed_arg $ decoys_arg $ algo_arg $ k_arg
      $ out_arg)

(* Offline analysis of trace files: rebuild the span forest, find the
   critical path of the longest trace, roll up per-phase time, and
   export viewer formats.  Works on one file or several concatenated
   (multi-domain/multi-process) files — causal ids are globally
   unique, so the spans just pool. *)
let trace_analyze_cmd =
  let run files perfetto folded =
    let module T = Ds_obs.Trace_tree in
    let spans =
      List.concat_map
        (fun path ->
          try T.parse_jsonl (read_file path)
          with
          | Sys_error msg ->
              Fmt.epr "dynospan: cannot read trace: %s@." msg;
              exit 2
          | Failure msg ->
              Fmt.epr "dynospan: bad trace %s: %s@." path msg;
              exit 2)
        files
    in
    if spans = [] then begin
      Fmt.epr "dynospan: no spans in %s@." (String.concat ", " files);
      exit 2
    end;
    let forest = T.of_spans spans in
    Fmt.pr "== trace analysis: %d spans from %d file(s) ==@." forest.T.node_count
      (List.length files);
    Fmt.pr "forest: %d roots, %d orphans, %d cycles broken@."
      (List.length forest.T.roots) forest.T.orphans forest.T.cycles_broken;
    let root = Option.get (T.main_root forest) in
    let root_ns = root.T.span.Ds_obs.Trace.dur_ns in
    let ms ns = Int64.to_float ns /. 1e6 in
    let pct ns =
      if root_ns = 0L then 0.0 else 100.0 *. Int64.to_float ns /. Int64.to_float root_ns
    in
    Fmt.pr "@.critical path of %S (%.3f ms):@." root.T.span.Ds_obs.Trace.name (ms root_ns);
    let path = T.critical_path root in
    List.iter
      (fun { T.p_node; p_ns } ->
        Fmt.pr "  %-28s %10.3f ms  %5.1f%%  (domain %d, pid %d)@."
          p_node.T.span.Ds_obs.Trace.name (ms p_ns) (pct p_ns)
          p_node.T.span.Ds_obs.Trace.domain p_node.T.span.Ds_obs.Trace.pid)
      path;
    let total = T.path_total path in
    Fmt.pr "critical-path total: %.3f ms = %.2f%% of root span@." (ms total) (pct total);
    Fmt.pr "@.per-phase rollup (self time, descending):@.";
    Fmt.pr "  %-28s %6s %12s %12s %12s@." "span" "count" "total ms" "self ms" "max ms";
    List.iter
      (fun r ->
        Fmt.pr "  %-28s %6d %12.3f %12.3f %12.3f@." r.T.r_name r.T.r_count (ms r.T.r_total_ns)
          (ms r.T.r_self_ns) (ms r.T.r_max_ns))
      (T.rollups forest);
    write_file perfetto (T.to_chrome_json spans);
    Fmt.pr "@.perfetto: %d events -> %s (open in ui.perfetto.dev or chrome://tracing)@."
      forest.T.node_count perfetto;
    match folded with
    | Some path ->
        write_file path (T.to_folded forest);
        Fmt.pr "folded stacks -> %s (flamegraph.pl / speedscope)@." path
    | None -> ()
  in
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"TRACE.jsonl"
          ~doc:
            "Trace files written by $(b,dynospan trace --out) (or $(b,--metrics-out) span \
             JSONL). Several files — e.g. one per process — are merged before analysis.")
  in
  let perfetto_arg =
    Arg.(
      value
      & opt string "trace.perfetto.json"
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:"Write Chrome trace-event JSON (Perfetto/chrome://tracing) to $(docv).")
  in
  let folded_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:"Also write folded-stack lines (flamegraph.pl / speedscope) to $(docv).")
  in
  Cmd.v
    (Cmd.info "trace-analyze"
       ~doc:
         "Reconstruct the span forest from trace JSONL files, print the critical path of the \
          longest trace and a per-phase self-time rollup, and write a Perfetto-loadable Chrome \
          trace-event file. The critical-path segments partition the root span exactly, so \
          their total always equals the root duration — the printed percentage is a \
          self-check.")
    Term.(const run $ files_arg $ perfetto_arg $ folded_arg)

(* ------------------------------------------------------------------ *)
(* The serving layer: serve / loadgen / chaos-serve                     *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket path.")

let dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "dir" ] ~docv:"DIR" ~doc:"Checkpoint store directory (created if missing).")

let serve_cmd =
  let run socket dir admin quota queue_bound drain checkpoint_every retention tenant_gauges
      no_obs no_flight metrics metrics_out =
    with_obs ~metrics ~metrics_out @@ fun () ->
    (* The service is the one command where telemetry defaults ON: the
       STAT rollup and the admin plane are only useful when the quantile
       sketches are accumulating.  [--no-obs] restores the zero-overhead
       path for byte-identical baselines. *)
    if not no_obs then Ds_obs.Export.enable ();
    let config =
      {
        (Ds_serve.Server.default_config ~dir) with
        Ds_serve.Server.quota_words = quota;
        queue_bound;
        drain_per_tick = drain;
        checkpoint_every;
        retention;
        tenant_gauges;
        flight = not no_flight;
      }
    in
    let server = Ds_serve.Server.create config in
    Ds_serve.Server.run_unix server ~socket_path:socket ?admin_path:admin ();
    Fmt.pr "serve: stopped; %d event(s) logged@."
      (List.length (Ds_serve.Server.events server))
  in
  let quota_arg =
    Arg.(
      value & opt int 4_000_000
      & info [ "quota-words" ] ~docv:"W" ~doc:"Per-tenant sketch-space budget in words.")
  in
  let queue_arg =
    Arg.(
      value & opt int 256
      & info [ "queue-bound" ] ~docv:"Q"
          ~doc:"Ingest queue depth; frames beyond it get an Overloaded NACK.")
  in
  let drain_arg =
    Arg.(
      value & opt int 128
      & info [ "drain-per-tick" ] ~docv:"D" ~doc:"Frames applied per event-loop tick.")
  in
  let ck_arg =
    Arg.(
      value & opt int 64
      & info [ "checkpoint-every" ] ~docv:"K"
          ~doc:"Applied frames between durable generations.")
  in
  let retention_arg =
    Arg.(
      value & opt int 2
      & info [ "retention" ] ~docv:"G" ~doc:"Durable generations kept per tenant.")
  in
  let admin_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "admin-socket" ] ~docv:"PATH"
          ~doc:
            "Open a second Unix listener inside the same event loop speaking minimal HTTP: \
             GET /stats (serve_stats/v1 JSON), /metrics (Prometheus), /json (full ds_obs/v1 \
             report), /healthz.")
  in
  let gauges_arg =
    Arg.(
      value & opt int 8
      & info [ "tenant-gauges" ] ~docv:"K"
          ~doc:
            "Heaviest tenants kept as per-tenant word gauges in the metric registry; the \
             rest stay in the bounded STAT rollup only.")
  in
  let no_obs_arg =
    Arg.(
      value & flag
      & info [ "no-obs" ]
          ~doc:
            "Disable the telemetry registry (quantiles, counters, spans). Stats served over \
             STAT and the admin plane then report structure only, with empty latency \
             summaries.")
  in
  let no_flight_arg =
    Arg.(
      value & flag
      & info [ "no-flight" ]
          ~doc:
            "Disarm the crash flight recorder (no flight-latest.json dumps on overload, \
             quarantine, checkpoint or shutdown).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the multi-tenant sketch service on a Unix domain socket: bounded ingest queue \
          with typed Overloaded/Quota NACKs, periodic write-tmp/fsync/rename checkpoints, and \
          kill -9-safe recovery that quarantines torn generations and replays the undurable \
          suffix by linearity. SIGTERM exits gracefully (drain + checkpoint). Telemetry is on \
          by default ($(b,--no-obs) disables); $(b,--admin-socket) adds an in-loop HTTP scrape \
          plane, and the flight recorder dumps recent spans and stats to flight-latest.json on \
          overload, quarantine and shutdown.")
    Term.(
      const run $ socket_arg $ dir_arg $ admin_arg $ quota_arg $ queue_arg $ drain_arg
      $ ck_arg $ retention_arg $ gauges_arg $ no_obs_arg $ no_flight_arg $ metrics_arg
      $ metrics_out_arg)

let loadgen_cmd =
  let run socket seed tenants streams updates n batch ledger verify delay_unit metrics
      metrics_out =
    with_obs ~metrics ~metrics_out @@ fun () ->
    let plan = Ds_serve.Loadgen.make ~seed ~tenants ~streams_per_tenant:streams ~updates ~n ~batch () in
    let client = Ds_serve.Client.connect ~socket_path:socket ~delay_unit () in
    if verify then begin
      let lines =
        match ledger with
        | None -> []
        | Some path when Sys.file_exists path ->
            let ic = open_in path in
            let rec go acc =
              match input_line ic with
              | line -> go (line :: acc)
              | exception End_of_file ->
                  close_in ic;
                  List.rev acc
            in
            go []
        | Some _ -> []
      in
      let checked, mismatches = Ds_serve.Loadgen.verify client plan ~ledger_lines:lines in
      Fmt.pr "loadgen verify: %d stream(s) checked against the acked ledger@." checked;
      List.iter (fun m -> Fmt.pr "MISMATCH %s@." m) mismatches;
      if mismatches <> [] then exit 1;
      Fmt.pr "loadgen verify: every acked update survived, bit-identically@."
    end
    else begin
      let oc = Option.map open_out ledger in
      let o = Ds_serve.Loadgen.run client plan ~ledger:oc in
      Option.iter close_out oc;
      Fmt.pr
        "loadgen: acked %d frame(s), failed %d, retries %d, reconnects %d, backoff %.3fs@."
        o.Ds_serve.Loadgen.o_acked_frames o.Ds_serve.Loadgen.o_failed_frames
        o.Ds_serve.Loadgen.o_retries o.Ds_serve.Loadgen.o_reconnects
        o.Ds_serve.Loadgen.o_backoff;
      let lat = o.Ds_serve.Loadgen.o_lat in
      if lat.Ds_obs.Quantile.s_count > 0 then
        Fmt.pr "loadgen: rpc latency (ms) p50=%.2f p90=%.2f p99=%.2f p999=%.2f over %d ack(s)@."
          (lat.Ds_obs.Quantile.s_p50 /. 1e6)
          (lat.Ds_obs.Quantile.s_p90 /. 1e6)
          (lat.Ds_obs.Quantile.s_p99 /. 1e6)
          (lat.Ds_obs.Quantile.s_p999 /. 1e6)
          lat.Ds_obs.Quantile.s_count;
      if o.Ds_serve.Loadgen.o_failed_frames > 0 then exit 1
    end;
    Ds_serve.Client.close client
  in
  let tenants_arg =
    Arg.(value & opt int 3 & info [ "tenants" ] ~docv:"T" ~doc:"Number of tenants.")
  in
  let streams_arg =
    Arg.(value & opt int 4 & info [ "streams" ] ~docv:"S" ~doc:"Streams per tenant.")
  in
  let updates_arg =
    Arg.(
      value & opt int 2000
      & info [ "updates" ] ~docv:"U"
          ~doc:"Total update budget, split across streams by a Zipf profile.")
  in
  let ln_arg =
    Arg.(value & opt int 64 & info [ "n" ] ~docv:"N" ~doc:"Sketch dimension per stream.")
  in
  let batch_arg =
    Arg.(value & opt int 8 & info [ "batch" ] ~docv:"B" ~doc:"Updates per ingest frame.")
  in
  let ledger_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:
            "Acked-frame ledger: one line per ack (tenant, stream, frames, mirror hash). With \
             $(b,--verify), read instead of written.")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Rebuild the seeded mirror sketches, query the server, and demand bit-identical \
             envelopes at the ledger's acked watermarks. Exits 1 on any mismatch.")
  in
  let delay_unit_arg =
    Arg.(
      value & opt float 0.02
      & info [ "delay-unit" ] ~docv:"SEC"
          ~doc:
            "Seconds per backoff unit of the client's capped retry envelope. Raise it to \
             survive longer server restarts (e.g. a kill -9 + recovery mid-load).")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Seeded multi-tenant load generator for $(b,dynospan serve): Zipf-profiled stream \
          sizes, batched LSK1 ingest frames, client-side retry with capped jittered backoff, \
          and an acked-frame ledger that $(b,--verify) later checks bit-for-bit — the whole \
          workload is a pure function of the seed.")
    Term.(
      const run $ socket_arg $ seed_arg $ tenants_arg $ streams_arg $ updates_arg $ ln_arg
      $ batch_arg $ ledger_arg $ verify_arg $ delay_unit_arg $ metrics_arg $ metrics_out_arg)

let serve_stats_cmd =
  let open Ds_util in
  let jnull = Json.Null in
  let mem k j = Option.value ~default:jnull (Json.member k j) in
  let num k j =
    match Option.bind (Json.member k j) Json.to_float with Some v -> v | None -> 0.0
  in
  let int_ k j = int_of_float (num k j) in
  let bool_ k j = match Json.member k j with Some (Json.Bool b) -> b | _ -> false in
  let str_ k j =
    match Option.bind (Json.member k j) Json.to_str with Some s -> s | None -> "?"
  in
  let pp_summary ppf j =
    Fmt.pf ppf "n=%d p50=%.0f p90=%.0f p99=%.0f p999=%.0f" (int_ "count" j) (num "p50" j)
      (num "p90" j) (num "p99" j) (num "p999" j)
  in
  let pp_nacks ppf j =
    match Json.to_obj j with
    | Some ((_ :: _) as kvs) ->
        Fmt.pf ppf " nacks:";
        List.iter
          (fun (k, v) -> Fmt.pf ppf " %s=%d" k (Option.value ~default:0 (Json.to_int v)))
          kvs
    | _ -> ()
  in
  let print_stats doc =
    let queue = mem "queue" doc and totals = mem "totals" doc and flight = mem "flight" doc in
    Fmt.pr "serve stats (%s): observability=%s@." (str_ "schema" doc)
      (if bool_ "observability" doc then "on" else "off");
    Fmt.pr "queue: depth %d / bound %d%s@." (int_ "depth" queue) (int_ "bound" queue)
      (if bool_ "overloaded" queue then " OVERLOADED" else "");
    Fmt.pr
      "totals: %d tenant(s), %d stream(s), %d applied frame(s), %d words (quota %d/tenant), \
       checkpoint lag %d@."
      (int_ "tenants" totals) (int_ "streams" totals) (int_ "applied_frames" totals)
      (int_ "words" totals) (int_ "quota_words" totals) (int_ "checkpoint_lag" totals);
    Fmt.pr "ingest latency (ns): %a%a@." pp_summary (mem "ingest" doc) pp_nacks
      (mem "nacks" doc);
    Fmt.pr "flight: %s, %d dump(s)@."
      (if bool_ "armed" flight then "armed" else "disarmed")
      (int_ "dumps" flight);
    (match Json.to_obj (mem "tenants" doc) with
    | Some ((_ :: _) as tenants) ->
        Fmt.pr "tenants (heaviest first):@.";
        List.iter
          (fun (name, tj) ->
            Fmt.pr "  %-12s %d/%d words, %d stream(s), gen %d, lag %d, %a%a@." name
              (int_ "words" tj) (int_ "quota_words" tj) (int_ "streams" tj)
              (int_ "generation" tj) (int_ "checkpoint_lag" tj) pp_summary (mem "ingest" tj)
              pp_nacks (mem "nacks" tj))
          tenants
    | _ -> ());
    let om = mem "tenants_omitted" doc in
    if int_ "count" om > 0 then
      Fmt.pr "(+%d tenant(s) omitted holding %d words; aggregate in overflow)@."
        (int_ "count" om) (int_ "words" om)
  in
  let run socket dir post_mortem json =
    if post_mortem then begin
      let dir =
        match dir with
        | Some d -> d
        | None ->
            Fmt.epr "serve-stats: --post-mortem needs --dir DIR@.";
            exit 2
      in
      match Ds_serve.Flight.read ~dir with
      | Error m ->
          Fmt.epr "serve-stats: no readable flight dump: %s@." m;
          exit 1
      | Ok doc ->
          if json then print_string (Json.to_string doc ^ "\n")
          else begin
            Fmt.pr "flight dump %s: seq=%d reason=%s pid=%d wall=%.3f@." (str_ "schema" doc)
              (int_ "seq" doc) (str_ "reason" doc) (int_ "pid" doc) (num "wall_s" doc);
            let spans =
              Option.value ~default:[] (Option.bind (Json.member "spans" doc) Json.to_list)
            in
            Fmt.pr "spans: %d in dump (%d recorded, %d dropped since boot)@."
              (List.length spans) (int_ "spans_recorded" doc) (int_ "spans_dropped" doc);
            let tail = List.filteri (fun i _ -> i >= List.length spans - 5) spans in
            List.iter
              (fun sp ->
                Fmt.pr "  %-24s dur=%.0fns trace=%Lx@." (str_ "name" sp) (num "dur_ns" sp)
                  (Int64.of_float (num "trace_id" sp)))
              tail;
            (match Option.bind (Json.member "events" doc) Json.to_list with
            | Some ((_ :: _) as events) ->
                Fmt.pr "events (newest first):@.";
                List.iter
                  (fun e ->
                    match Json.to_str e with Some s -> Fmt.pr "  %s@." s | None -> ())
                  events
            | _ -> ());
            print_stats (mem "stats" doc)
          end
    end
    else begin
      let socket =
        match socket with
        | Some s -> s
        | None ->
            Fmt.epr "serve-stats: need --socket PATH (or --post-mortem --dir DIR)@.";
            exit 2
      in
      let client = Ds_serve.Client.connect ~socket_path:socket () in
      let r = Ds_serve.Client.stat client in
      Ds_serve.Client.close client;
      match r with
      | Error m ->
          Fmt.epr "serve-stats: %s@." m;
          exit 1
      | Ok s ->
          if json then print_string (s ^ "\n")
          else (
            match Json.parse s with
            | Ok doc -> print_stats doc
            | Error m ->
                Fmt.epr "serve-stats: server sent unparseable stats: %s@." m;
                exit 1)
    end
  in
  let socket_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket of a running server.")
  in
  let dir_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Checkpoint store to read the flight dump from (with $(b,--post-mortem)).")
  in
  let post_mortem_arg =
    Arg.(
      value & flag
      & info [ "post-mortem" ]
          ~doc:
            "Read $(b,flight-latest.json) from $(b,--dir) instead of asking a live server — \
             what the flight recorder persisted before a crash or kill -9.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the raw JSON document instead of the summary view.")
  in
  Cmd.v
    (Cmd.info "serve-stats"
       ~doc:
         "Live service stats: ask a running $(b,dynospan serve) for its serve_stats/v1 rollup \
          over SRV1 (queue depth and backpressure state, NACK taxonomy, ingest latency \
          p50/p99/p999, per-tenant space-vs-quota and watermarks), or with $(b,--post-mortem) \
          read the crash flight recorder's last dump from the checkpoint store.")
    Term.(const run $ socket_opt_arg $ dir_opt_arg $ post_mortem_arg $ json_arg)

let chaos_serve_cmd =
  let run dir seed fault_seed rate crash_every tear =
    let plan =
      if rate <= 0.0 then Ds_fault.Fault_plan.none
      else Ds_fault.Fault_plan.random ~seed:fault_seed ~rate
    in
    let workload =
      Ds_serve.Loadgen.make ~seed ~tenants:2 ~streams_per_tenant:3 ~updates:600 ~n:64
        ~batch:4 ()
    in
    let r =
      Ds_sim.Serve_sim.run ~crash_every ~tear_on_crash:tear ~checkpoint_every:32 ~plan ~dir
        workload
    in
    Fmt.pr "== serve layer under connection faults and seeded kill -9 ==@.";
    Fmt.pr "plan: seed=%d fault-seed=%d rate=%.2f crash-every=%d tear=%b@." seed fault_seed
      rate crash_every tear;
    Fmt.pr "%a@." Ds_sim.Serve_sim.pp_report r;
    if not r.Ds_sim.Serve_sim.sv_final_match then exit 1
  in
  let fault_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "fault-seed" ] ~docv:"FS"
          ~doc:"Seed of the connection-fault plan; equal seeds replay identical faults.")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.1
      & info [ "rate" ] ~docv:"R" ~doc:"Per-send-attempt connection-fault probability.")
  in
  let crash_arg =
    Arg.(
      value & opt int 40
      & info [ "crash-every" ] ~docv:"K"
          ~doc:"kill -9 the simulated server after every K acks (0 disables).")
  in
  let tear_arg =
    Arg.(
      value & flag
      & info [ "tear" ]
          ~doc:
            "Truncate the newest durable generation at a seeded offset before each recovery, \
             forcing the quarantine-and-fall-back path.")
  in
  Cmd.v
    (Cmd.info "chaos-serve"
       ~doc:
         "Deterministic chaos run of the serving layer: seeded workload through connection \
          faults (partial frame + stall, mid-frame disconnect, reordered duplicates) with \
          seeded kill -9 and optional torn generations. Fully replayable: equal seeds print \
          identical reports. Exits 1 unless every stream's final envelope is bit-identical to \
          the seeded mirror.")
    Term.(
      const run $ dir_arg $ seed_arg $ fault_seed_arg $ rate_arg $ crash_arg $ tear_arg)

let () =
  let doc = "spanners and sparsifiers in dynamic streams (Kapralov-Woodruff, PODC 2014)" in
  let info = Cmd.info "dynospan" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            spanner_cmd;
            checkpoint_cmd;
            resume_cmd;
            chaos_cmd;
            trace_cmd;
            trace_analyze_cmd;
            additive_cmd;
            sparsify_cmd;
            sparsify1p_cmd;
            forest_cmd;
            kconn_cmd;
            mst_cmd;
            bipartite_cmd;
            offline_cmd;
            serve_cmd;
            serve_stats_cmd;
            loadgen_cmd;
            chaos_serve_cmd;
          ]))
