#!/bin/sh
# Regression harness for dynospan's checkpoint failure modes and the chaos
# subcommand's determinism:
#   - a garbage/truncated/mismatched checkpoint exits with code 2 and a
#     single diagnostic line on stderr, never an OCaml backtrace;
#   - --recover heals any of those into a successful run;
#   - chaos with equal seeds prints byte-identical reports.
set -eu

BIN=$1
case "$BIN" in */*) ;; *) BIN="./$BIN" ;; esac
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

WORKLOAD="-n 48 --seed 3 --decoys 100 -k 2"

fail() {
  echo "check_corrupt: $1" >&2
  exit 1
}

# Expect exit 2, one-line stderr, no backtrace.
expect_clean_failure() {
  label=$1
  file=$2
  set +e
  "$BIN" resume $WORKLOAD --file "$file" >/dev/null 2>"$TMP/err"
  code=$?
  set -e
  [ "$code" -eq 2 ] || fail "$label: expected exit 2, got $code"
  lines=$(wc -l <"$TMP/err")
  [ "$lines" -eq 1 ] || { cat "$TMP/err" >&2; fail "$label: expected one diagnostic line, got $lines"; }
  grep -q "dynospan:" "$TMP/err" || fail "$label: diagnostic missing dynospan: prefix"
  if grep -q -e "Fatal error" -e "Raised at" -e "Called from" "$TMP/err"; then
    cat "$TMP/err" >&2
    fail "$label: diagnostic looks like an OCaml backtrace"
  fi
}

# A real checkpoint to damage.
"$BIN" checkpoint $WORKLOAD --file "$TMP/good.ckpt" >/dev/null
[ -s "$TMP/good.ckpt" ] || fail "checkpoint file is empty"

printf 'this is not a checkpoint at all' >"$TMP/garbage.ckpt"
expect_clean_failure "garbage" "$TMP/garbage.ckpt"

size=$(wc -c <"$TMP/good.ckpt")
head -c "$((size / 2))" "$TMP/good.ckpt" >"$TMP/cut.ckpt"
expect_clean_failure "truncated" "$TMP/cut.ckpt"

expect_clean_failure "missing file" "$TMP/does-not-exist.ckpt"

# Bit flip in the middle: checksum must catch it.
mid=$((size / 2))
head -c "$mid" "$TMP/good.ckpt" >"$TMP/flip.ckpt"
printf 'X' >>"$TMP/flip.ckpt"
tail -c +"$((mid + 2))" "$TMP/good.ckpt" >>"$TMP/flip.ckpt"
cmp -s "$TMP/good.ckpt" "$TMP/flip.ckpt" && fail "flip: damage did not change the file"
expect_clean_failure "bit flip" "$TMP/flip.ckpt"

# The intact checkpoint still resumes.
"$BIN" resume $WORKLOAD --file "$TMP/good.ckpt" >/dev/null 2>&1 \
  || fail "intact checkpoint no longer resumes"

# --recover turns a damaged checkpoint into a recomputed (successful) run.
"$BIN" resume $WORKLOAD --recover --file "$TMP/flip.ckpt" >"$TMP/recovered" 2>&1 \
  || fail "--recover failed on a damaged checkpoint"
grep -q "recomputed pass 1" "$TMP/recovered" || fail "--recover did not report recomputation"

# Recovered output matches an uninterrupted run, spanner hash included.
"$BIN" spanner $WORKLOAD >"$TMP/direct" 2>&1
h1=$(grep "spanner-hash" "$TMP/recovered")
h2=$(grep "spanner-hash" "$TMP/direct")
[ "$h1" = "$h2" ] || fail "recovered spanner differs from direct run ($h1 vs $h2)"

# Chaos runs are replayable: equal seeds, byte-identical reports.
CHAOS="chaos -n 40 --seed 5 --decoys 100 --servers 3 --rate 0.10 --fault-seed 7"
"$BIN" $CHAOS >"$TMP/chaos1" 2>&1 || fail "chaos run failed"
"$BIN" $CHAOS >"$TMP/chaos2" 2>&1 || fail "chaos rerun failed"
cmp -s "$TMP/chaos1" "$TMP/chaos2" || fail "chaos reports differ across reruns"
grep -q "correct=true" "$TMP/chaos1" || fail "chaos run did not decode a correct forest"

echo "check_corrupt: all checks passed"
